/**
 * @file
 * Bit-exactness parity suite for the precomputed decision-path tables
 * (DESIGN.md §13). Every test constructs two identical simulators —
 * one serving from the CostModelCache, one with setUseCostCache(false)
 * recomputing from first principles — and asserts `==` (not NEAR) on
 * every outcome field: the cache replays the exact FP operation
 * sequence of the direct path, so any rounding difference is a bug.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/oracle.h"
#include "dnn/model_zoo.h"
#include "env/scenario.h"
#include "fault/fault_injector.h"
#include "fault/retry.h"
#include "platform/device_zoo.h"
#include "sim/qos.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace autoscale::sim {
namespace {

struct SimPair {
    InferenceSimulator cached;
    InferenceSimulator direct;
};

using DeviceFactory = platform::Device (*)();

SimPair
makePair(DeviceFactory factory)
{
    SimPair pair{InferenceSimulator::makeDefault(factory()),
                 InferenceSimulator::makeDefault(factory())};
    EXPECT_TRUE(pair.cached.usingCostCache());
    pair.direct.setUseCostCache(false);
    return pair;
}

const DeviceFactory kAllDevices[] = {
    platform::makeMi8Pro, platform::makeGalaxyS10e,
    platform::makeMotoXForce};

/**
 * The derate grid: identity, the Table IV-style hogs (which hit the
 * interference/thermal derate paths), weak radio links (which change
 * transfer math but not derates), and deliberately "ugly" fractional
 * values that would expose any prefix-sum shortcut taken on a
 * non-identity derate.
 */
std::vector<env::EnvState>
envGrid()
{
    std::vector<env::EnvState> grid;
    grid.emplace_back(); // identity derate, clean links

    env::EnvState cpu_hog;
    cpu_hog.coCpuUtil = 0.85;
    cpu_hog.coMemUtil = 0.1;
    cpu_hog.thermalFactor = 0.85;
    grid.push_back(cpu_hog);

    env::EnvState mem_hog;
    mem_hog.coCpuUtil = 0.2;
    mem_hog.coMemUtil = 0.8;
    grid.push_back(mem_hog);

    env::EnvState weak_links;
    weak_links.rssiWlanDbm = -85.0;
    weak_links.rssiP2pDbm = -79.0;
    grid.push_back(weak_links);

    env::EnvState ugly;
    ugly.coCpuUtil = 0.37;
    ugly.coMemUtil = 0.21;
    ugly.thermalFactor = 0.93;
    ugly.rssiWlanDbm = -72.5;
    ugly.rssiP2pDbm = -68.3;
    grid.push_back(ugly);

    return grid;
}

void
expectSameOutcome(const Outcome &a, const Outcome &b,
                  const std::string &context)
{
    ASSERT_EQ(a.feasible, b.feasible) << context;
    EXPECT_EQ(a.latencyMs, b.latencyMs) << context;
    EXPECT_EQ(a.energyJ, b.energyJ) << context;
    EXPECT_EQ(a.estimatedEnergyJ, b.estimatedEnergyJ) << context;
    EXPECT_EQ(a.accuracyPct, b.accuracyPct) << context;
    EXPECT_EQ(a.computeMs, b.computeMs) << context;
    EXPECT_EQ(a.txMs, b.txMs) << context;
    EXPECT_EQ(a.rxMs, b.rxMs) << context;
}

const std::vector<dnn::Precision> kPrecisions = {
    dnn::Precision::FP32, dnn::Precision::FP16, dnn::Precision::INT8};

/**
 * Every (zoo network × device × place × processor × precision × V/F
 * step × derate-grid env) expected() outcome must agree bit-for-bit —
 * including the infeasible combinations, which both paths must mark
 * identically.
 */
TEST(CostCacheParity, ExhaustiveExpectedSweep)
{
    for (const DeviceFactory factory : kAllDevices) {
        SimPair pair = makePair(factory);
        const std::vector<env::EnvState> envs = envGrid();
        const struct {
            TargetPlace place;
            const platform::Device &dev;
        } places[] = {
            {TargetPlace::Local, pair.cached.localDevice()},
            {TargetPlace::ConnectedEdge, pair.cached.connectedDevice()},
            {TargetPlace::Cloud, pair.cached.cloudDevice()},
        };
        for (const dnn::Network &net : dnn::modelZoo()) {
            for (const auto &entry : places) {
                for (const platform::Processor *proc :
                     entry.dev.processors()) {
                    for (const dnn::Precision precision : kPrecisions) {
                        for (std::size_t vf = 0; vf < proc->numVfSteps();
                             ++vf) {
                            const ExecutionTarget target{
                                entry.place, proc->kind(), vf, precision};
                            for (std::size_t e = 0; e < envs.size(); ++e) {
                                std::ostringstream context;
                                context << pair.cached.localDevice().name()
                                        << " "
                                        << net.name() << " "
                                        << target.label() << " env#" << e;
                                expectSameOutcome(
                                    pair.cached.expected(net, target,
                                                         envs[e]),
                                    pair.direct.expected(net, target,
                                                         envs[e]),
                                    context.str());
                            }
                        }
                    }
                }
            }
        }
    }
}

/**
 * Partitioned execution: every split point of several networks, local
 * processors at top and bottom V/F (the bottom step exercises the
 * non-top-V/F range path that has no tail sums), both remote places,
 * across the derate grid.
 */
TEST(CostCacheParity, PartitionedSweep)
{
    SimPair pair = makePair(platform::makeMi8Pro);
    const std::vector<env::EnvState> envs = envGrid();
    for (const char *name :
         {"Inception v3", "ResNet 50", "MobileNet v2"}) {
        const dnn::Network &net = dnn::findModel(name);
        const std::size_t num_layers = net.layers().size();
        const struct {
            platform::ProcKind proc;
            dnn::Precision precision;
        } locals[] = {
            {platform::ProcKind::MobileCpu, dnn::Precision::FP32},
            {platform::ProcKind::MobileGpu, dnn::Precision::FP16},
        };
        for (const auto &local : locals) {
            const platform::Processor *proc =
                pair.cached.localDevice().processor(local.proc);
            ASSERT_NE(proc, nullptr);
            for (const TargetPlace remote :
                 {TargetPlace::Cloud, TargetPlace::ConnectedEdge}) {
                for (const std::size_t vf :
                     {std::size_t{0}, proc->maxVfIndex()}) {
                    for (std::size_t split = 0; split <= num_layers;
                         ++split) {
                        PartitionSpec spec;
                        spec.splitLayer = split;
                        spec.localProc = local.proc;
                        spec.vfIndex = vf;
                        spec.localPrecision = local.precision;
                        spec.remotePlace = remote;
                        for (std::size_t e = 0; e < envs.size(); ++e) {
                            std::ostringstream context;
                            context << name << " split=" << split
                                    << " vf=" << vf << " env#" << e;
                            expectSameOutcome(
                                pair.cached.expectedPartitioned(
                                    net, spec, envs[e]),
                                pair.direct.expectedPartitioned(
                                    net, spec, envs[e]),
                                context.str());
                        }
                    }
                }
            }
        }
    }
}

/** Sample @p steps EnvStates from a seeded scenario stream. */
std::vector<env::EnvState>
sampleEnvStream(env::ScenarioId id, const fault::FaultPlan &faults,
                int steps, std::uint64_t seed)
{
    env::Scenario scenario(id, faults);
    Rng rng(seed);
    std::vector<env::EnvState> envs;
    envs.reserve(static_cast<std::size_t>(steps));
    for (int i = 0; i < steps; ++i) {
        envs.push_back(scenario.next(rng));
    }
    return envs;
}

/**
 * The oracle's choice (which sweeps the precomputed feasible-action
 * subset when the cache is on, the full action list when off) and the
 * forced local fallback must be identical on every step of seeded
 * fault-free and flaky-wifi environment streams.
 */
TEST(CostCacheParity, OracleAndFallbackDecisions)
{
    SimPair pair = makePair(platform::makeMi8Pro);
    baselines::OptOracle cachedOracle(pair.cached);
    baselines::OptOracle directOracle(pair.direct);
    const struct {
        env::ScenarioId id;
        const char *faults;
    } streams[] = {
        {env::ScenarioId::S1, "none"},
        {env::ScenarioId::D4, "none"},
        {env::ScenarioId::S4, "flaky-wifi"},
        {env::ScenarioId::D3, "flaky-wifi"},
    };
    for (const auto &stream : streams) {
        const std::vector<env::EnvState> envs = sampleEnvStream(
            stream.id, fault::FaultPlan::fromName(stream.faults), 60, 42);
        for (const dnn::Network &net : dnn::modelZoo()) {
            const InferenceRequest request = makeRequest(net);
            for (std::size_t i = 0; i < envs.size(); ++i) {
                std::ostringstream context;
                context << net.name() << " "
                        << env::scenarioName(stream.id) << "+"
                        << stream.faults << " step " << i;
                EXPECT_TRUE(
                    cachedOracle.optimalTarget(request, envs[i])
                    == directOracle.optimalTarget(request, envs[i]))
                    << context.str();
                EXPECT_TRUE(
                    pair.cached.bestLocalTarget(
                        net, envs[i], request.accuracyTargetPct)
                    == pair.direct.bestLocalTarget(
                        net, envs[i], request.accuracyTargetPct))
                    << context.str();
            }
        }
    }
}

/**
 * Noisy paths: run() and runWithFaults() from identical RNG seeds must
 * produce bit-identical measurements and consume identical RNG
 * streams (checked by comparing the generators' next draws at the end).
 */
TEST(CostCacheParity, NoisyRunAndFaultStreams)
{
    SimPair pair = makePair(platform::makeMi8Pro);
    const std::vector<env::EnvState> envs = sampleEnvStream(
        env::ScenarioId::D3, fault::FaultPlan::fromName("flaky-wifi"),
        120, 7);
    const ExecutionTarget cloud{TargetPlace::Cloud,
                                platform::ProcKind::ServerGpu,
                                pair.cached.cloudDevice().gpu().maxVfIndex(),
                                dnn::Precision::FP32};
    const fault::RetryPolicy retry;
    for (const dnn::Network &net : dnn::modelZoo()) {
        const InferenceRequest request = makeRequest(net);
        const ExecutionTarget local{
            TargetPlace::Local, platform::ProcKind::MobileCpu,
            pair.cached.localDevice().cpu().maxVfIndex(),
            dnn::Precision::FP32};
        Rng rngCachedRun(11);
        Rng rngDirectRun(11);
        Rng rngCachedFault(13);
        Rng rngDirectFault(13);
        for (std::size_t i = 0; i < envs.size(); ++i) {
            const std::string context =
                std::string(net.name()) + " step " + std::to_string(i);
            expectSameOutcome(
                pair.cached.run(net, local, envs[i], rngCachedRun),
                pair.direct.run(net, local, envs[i], rngDirectRun),
                context + " run/local");
            const FaultOutcome a = pair.cached.runWithFaults(
                net, cloud, envs[i], retry, request.accuracyTargetPct,
                rngCachedFault);
            const FaultOutcome b = pair.direct.runWithFaults(
                net, cloud, envs[i], retry, request.accuracyTargetPct,
                rngDirectFault);
            expectSameOutcome(a.outcome, b.outcome, context + " fault");
            EXPECT_TRUE(a.executedTarget == b.executedTarget) << context;
            EXPECT_EQ(a.attempts, b.attempts) << context;
            EXPECT_EQ(a.fellBack, b.fellBack) << context;
            EXPECT_EQ(a.wastedEnergyJ, b.wastedEnergyJ) << context;
        }
        EXPECT_EQ(rngCachedRun.next(), rngDirectRun.next()) << net.name();
        EXPECT_EQ(rngCachedFault.next(), rngDirectFault.next())
            << net.name();
    }
}

/**
 * Synthetic (non-zoo) networks are absent from the cache and must fall
 * back to the direct path transparently — same outcomes, no crash.
 */
TEST(CostCacheParity, NonZooNetworkFallsBackToDirect)
{
    SimPair pair = makePair(platform::makeMi8Pro);
    const dnn::Network copy = dnn::findModel("ResNet 50");
    EXPECT_EQ(pair.cached.costCache().entry(copy), nullptr);
    const ExecutionTarget target{TargetPlace::Local,
                                 platform::ProcKind::MobileCpu,
                                 pair.cached.localDevice().cpu().maxVfIndex(),
                                 dnn::Precision::FP32};
    for (const env::EnvState &env : envGrid()) {
        expectSameOutcome(pair.cached.expected(copy, target, env),
                          pair.direct.expected(copy, target, env),
                          "reconstructed ResNet 50");
    }
}

} // namespace
} // namespace autoscale::sim
