/**
 * @file
 * Tests for the Table I state encoding: bin boundaries, the 3,072-state
 * space, dense encoding, and the ablation (feature-disabling) support.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/state.h"
#include "dnn/model_zoo.h"

namespace autoscale::core {
namespace {

StateFeatures
baseFeatures()
{
    StateFeatures f;
    f.convLayers = 10;
    f.fcLayers = 1;
    f.rcLayers = 0;
    f.macsMillions = 500.0;
    f.coCpuUtil = 0.0;
    f.coMemUtil = 0.0;
    f.rssiWlanDbm = -55.0;
    f.rssiP2pDbm = -55.0;
    return f;
}

TEST(StateSpace, HasExactly3072States)
{
    // 4 * 2 * 2 * 3 * 4 * 4 * 2 * 2 = 3,072 (Section V-A footnote 8).
    StateEncoder encoder;
    EXPECT_EQ(encoder.numStates(), 3072);
}

TEST(StateSpace, FeatureCardinalitiesMatchTableI)
{
    EXPECT_EQ(featureCardinality(Feature::Conv), 4);
    EXPECT_EQ(featureCardinality(Feature::Fc), 2);
    EXPECT_EQ(featureCardinality(Feature::Rc), 2);
    EXPECT_EQ(featureCardinality(Feature::Mac), 3);
    EXPECT_EQ(featureCardinality(Feature::CoCpu), 4);
    EXPECT_EQ(featureCardinality(Feature::CoMem), 4);
    EXPECT_EQ(featureCardinality(Feature::RssiW), 2);
    EXPECT_EQ(featureCardinality(Feature::RssiP), 2);
}

TEST(StateSpace, FeatureNames)
{
    EXPECT_STREQ(featureName(Feature::Conv), "S_CONV");
    EXPECT_STREQ(featureName(Feature::CoMem), "S_Co_MEM");
    EXPECT_STREQ(featureName(Feature::RssiP), "S_RSSI_P");
}

// Conv bins: small (<30), medium (<50), large (<90), larger (>=90).
using BinCase = std::tuple<int, int>;

class ConvBins : public ::testing::TestWithParam<BinCase> {};

TEST_P(ConvBins, TableIBoundaries)
{
    const auto &[layers, expected_bin] = GetParam();
    StateFeatures f = baseFeatures();
    f.convLayers = layers;
    EXPECT_EQ(featureBin(Feature::Conv, f), expected_bin);
}

INSTANTIATE_TEST_SUITE_P(
    TableI, ConvBins,
    ::testing::Values(BinCase{0, 0}, BinCase{29, 0}, BinCase{30, 1},
                      BinCase{49, 1}, BinCase{50, 2}, BinCase{89, 2},
                      BinCase{90, 3}, BinCase{200, 3}));

class MacBins : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(MacBins, TableIBoundaries)
{
    const auto &[macs, expected_bin] = GetParam();
    StateFeatures f = baseFeatures();
    f.macsMillions = macs;
    EXPECT_EQ(featureBin(Feature::Mac, f), expected_bin);
}

INSTANTIATE_TEST_SUITE_P(
    TableI, MacBins,
    ::testing::Values(std::tuple<double, int>{100.0, 0},
                      std::tuple<double, int>{999.0, 0},
                      std::tuple<double, int>{1000.0, 1},
                      std::tuple<double, int>{1999.0, 1},
                      std::tuple<double, int>{2000.0, 2},
                      std::tuple<double, int>{9000.0, 2}));

class UtilBins : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(UtilBins, TableIBoundaries)
{
    const auto &[util, expected_bin] = GetParam();
    StateFeatures f = baseFeatures();
    f.coCpuUtil = util;
    f.coMemUtil = util;
    EXPECT_EQ(featureBin(Feature::CoCpu, f), expected_bin);
    EXPECT_EQ(featureBin(Feature::CoMem, f), expected_bin);
}

INSTANTIATE_TEST_SUITE_P(
    TableI, UtilBins,
    ::testing::Values(std::tuple<double, int>{0.0, 0},
                      std::tuple<double, int>{0.1, 1},
                      std::tuple<double, int>{0.24, 1},
                      std::tuple<double, int>{0.25, 2},
                      std::tuple<double, int>{0.74, 2},
                      std::tuple<double, int>{0.75, 3},
                      std::tuple<double, int>{1.0, 3}));

TEST(StateBins, FcRcAndRssiBoundaries)
{
    StateFeatures f = baseFeatures();
    f.fcLayers = 9;
    EXPECT_EQ(featureBin(Feature::Fc, f), 0);
    f.fcLayers = 10;
    EXPECT_EQ(featureBin(Feature::Fc, f), 1);
    f.rcLayers = 9;
    EXPECT_EQ(featureBin(Feature::Rc, f), 0);
    f.rcLayers = 24;
    EXPECT_EQ(featureBin(Feature::Rc, f), 1);

    f.rssiWlanDbm = -79.9; // regular (> -80)
    EXPECT_EQ(featureBin(Feature::RssiW, f), 0);
    f.rssiWlanDbm = -80.0; // weak (<= -80)
    EXPECT_EQ(featureBin(Feature::RssiW, f), 1);
    f.rssiP2pDbm = -85.0;
    EXPECT_EQ(featureBin(Feature::RssiP, f), 1);
}

TEST(StateEncoder, EncodeIsWithinRangeAndInjectiveOverBins)
{
    StateEncoder encoder;
    std::set<StateId> ids;
    // Enumerate one representative per bin combination and confirm all
    // 3,072 ids are distinct and in range.
    const int conv_values[] = {0, 35, 60, 120};
    const int fc_values[] = {1, 15};
    const int rc_values[] = {0, 20};
    const double mac_values[] = {500.0, 1500.0, 4000.0};
    const double util_values[] = {0.0, 0.1, 0.5, 0.9};
    const double rssi_values[] = {-55.0, -85.0};
    for (int conv : conv_values) {
        for (int fc : fc_values) {
            for (int rc : rc_values) {
                for (double mac : mac_values) {
                    for (double cu : util_values) {
                        for (double mu : util_values) {
                            for (double rw : rssi_values) {
                                for (double rp : rssi_values) {
                                    StateFeatures f;
                                    f.convLayers = conv;
                                    f.fcLayers = fc;
                                    f.rcLayers = rc;
                                    f.macsMillions = mac;
                                    f.coCpuUtil = cu;
                                    f.coMemUtil = mu;
                                    f.rssiWlanDbm = rw;
                                    f.rssiP2pDbm = rp;
                                    const StateId id = encoder.encode(f);
                                    EXPECT_GE(id, 0);
                                    EXPECT_LT(id, 3072);
                                    ids.insert(id);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    EXPECT_EQ(ids.size(), 3072u);
}

TEST(StateEncoder, DisablingFeaturesShrinksTheSpace)
{
    StateEncoder encoder;
    encoder.disableFeature(Feature::Conv);
    EXPECT_EQ(encoder.numStates(), 3072 / 4);
    EXPECT_FALSE(encoder.isEnabled(Feature::Conv));
    EXPECT_TRUE(encoder.isEnabled(Feature::Fc));

    encoder.disableFeature(Feature::CoMem);
    EXPECT_EQ(encoder.numStates(), 3072 / 4 / 4);
}

TEST(StateEncoder, DisabledFeatureDoesNotAffectEncoding)
{
    StateEncoder encoder;
    encoder.disableFeature(Feature::RssiW);
    StateFeatures a = baseFeatures();
    StateFeatures b = baseFeatures();
    b.rssiWlanDbm = -90.0;
    EXPECT_EQ(encoder.encode(a), encoder.encode(b));

    StateEncoder full;
    EXPECT_NE(full.encode(a), full.encode(b));
}

TEST(StateEncoder, BinsReportPerFeature)
{
    StateEncoder encoder;
    StateFeatures f = baseFeatures();
    f.convLayers = 60;
    f.coMemUtil = 0.8;
    const auto bins = encoder.bins(f);
    EXPECT_EQ(bins[static_cast<int>(Feature::Conv)], 2);
    EXPECT_EQ(bins[static_cast<int>(Feature::CoMem)], 3);
    EXPECT_EQ(bins[static_cast<int>(Feature::RssiW)], 0);
}

TEST(StateFeatures, BuiltFromNetworkAndEnvironment)
{
    const dnn::Network net = dnn::makeMobileNetV3();
    env::EnvState env;
    env.coCpuUtil = 0.4;
    env.rssiWlanDbm = -82.0;
    const StateFeatures f = makeStateFeatures(net, env);
    EXPECT_EQ(f.convLayers, 23);
    EXPECT_EQ(f.fcLayers, 20);
    EXPECT_EQ(f.rcLayers, 0);
    EXPECT_NEAR(f.macsMillions, net.totalMacsMillions(), 1e-9);
    EXPECT_DOUBLE_EQ(f.coCpuUtil, 0.4);
    EXPECT_DOUBLE_EQ(f.rssiWlanDbm, -82.0);
}

TEST(StateFeatures, ZooNetworksCoverMultipleStateBins)
{
    // The ten workloads must spread across CONV/FC/RC/MAC bins so the
    // leave-one-out protocol generalizes.
    StateEncoder encoder;
    std::set<StateId> ids;
    for (const auto &net : dnn::modelZoo()) {
        ids.insert(encoder.encode(makeStateFeatures(net, env::EnvState{})));
    }
    EXPECT_GE(ids.size(), 5u);
}

} // namespace
} // namespace autoscale::core
