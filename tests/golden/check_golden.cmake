# Golden-regression check, run as a ctest entry:
#
#   cmake -DCMD="<binary> <args...>" -DGOLDEN=<checked-in file>
#         -DOUT=<scratch file> -P check_golden.cmake
#
# Runs CMD, captures stdout into OUT, and byte-compares it against
# GOLDEN. On divergence the scratch file is left in place (CI uploads
# it as an artifact) and the test fails with update instructions.
# Regenerate every golden with tools/update_goldens.sh after an
# intentional behaviour change; the diff then documents the change in
# review.

foreach(required CMD GOLDEN OUT)
    if(NOT DEFINED ${required})
        message(FATAL_ERROR "check_golden.cmake: missing -D${required}")
    endif()
endforeach()

separate_arguments(command_list UNIX_COMMAND "${CMD}")
get_filename_component(out_dir "${OUT}" DIRECTORY)
file(MAKE_DIRECTORY "${out_dir}")

execute_process(
    COMMAND ${command_list}
    OUTPUT_FILE "${OUT}"
    RESULT_VARIABLE run_result)
if(NOT run_result EQUAL 0)
    message(FATAL_ERROR
        "golden command failed (exit ${run_result}): ${CMD}")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${OUT}" "${GOLDEN}"
    RESULT_VARIABLE diff_result)
if(NOT diff_result EQUAL 0)
    file(READ "${OUT}" actual)
    message(FATAL_ERROR
        "golden mismatch against ${GOLDEN}\n"
        "divergent output kept at: ${OUT}\n"
        "If the change is intentional, regenerate with "
        "tools/update_goldens.sh and commit the diff.\n"
        "--- actual output ---\n${actual}")
endif()
