/**
 * @file
 * Tests for the online serving loop (DESIGN.md §12): determinism,
 * bounded queues under overload, the degradation ladder, breaker
 * behaviour during a blackout, and checkpoint/resume.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "dnn/model_zoo.h"
#include "platform/device_zoo.h"
#include "serve/server.h"
#include "sim/simulator.h"

namespace autoscale::serve {
namespace {

const sim::InferenceSimulator &
testSim()
{
    static const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    return sim;
}

std::vector<const dnn::Network *>
allNetworks()
{
    std::vector<const dnn::Network *> networks;
    for (const dnn::Network &network : dnn::modelZoo()) {
        networks.push_back(&network);
    }
    return networks;
}

/** Config with the arrival rate set as a multiple of local capacity. */
ServeConfig
configAtRate(double rateX, std::int64_t requests)
{
    ServeConfig config;
    config.totalRequests = requests;
    config.trainRunsPerCombo = 20;
    config.seed = 7;
    const double nominal =
        nominalServiceMs(testSim(), allNetworks(), 50.0);
    config.arrival.ratePerSec = rateX * 1000.0 / nominal;
    return config;
}

std::string
dominantCategory(const ServeStats &stats)
{
    std::string best;
    std::int64_t count = -1;
    for (const auto &[category, n] : stats.categoryCounts) {
        if (n > count) {
            best = category;
            count = n;
        }
    }
    return best;
}

TEST(Serve, RerunsAreByteIdentical)
{
    const ServeConfig config = configAtRate(1.5, 250);
    const ServeStats a = runServe(testSim(), config);
    const ServeStats b = runServe(testSim(), config);
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.shedDeadline, b.shedDeadline);
    EXPECT_EQ(a.shedOverflow, b.shedOverflow);
    EXPECT_EQ(a.shedStale, b.shedStale);
    EXPECT_EQ(a.qosViolations, b.qosViolations);
    // Bitwise-equal floats: the loop must be deterministic, not just
    // statistically similar.
    EXPECT_EQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.wastedEnergyJ, b.wastedEnergyJ);
    EXPECT_EQ(a.endClockMs, b.endClockMs);
    ASSERT_EQ(a.latenciesMs.size(), b.latenciesMs.size());
    for (std::size_t i = 0; i < a.latenciesMs.size(); ++i) {
        EXPECT_EQ(a.latenciesMs[i], b.latenciesMs[i]) << i;
    }
    EXPECT_EQ(a.categoryCounts, b.categoryCounts);
}

TEST(Serve, EveryArrivalIsAccountedFor)
{
    const ServeStats stats = runServe(testSim(), configAtRate(2.0, 300));
    EXPECT_EQ(stats.arrivals, 300);
    EXPECT_EQ(stats.admitted + stats.shedDeadline + stats.shedOverflow,
              stats.arrivals);
    EXPECT_EQ(stats.served + stats.shedStale, stats.admitted);
}

TEST(Serve, OverloadKeepsQueueAndWaitsBounded)
{
    // Sustained 4x overload: the queue must stay within its configured
    // bound and accepted requests must not accumulate unbounded wait.
    ServeConfig config = configAtRate(4.0, 400);
    config.admission.maxDepth = 16;
    const ServeStats stats = runServe(testSim(), config);
    EXPECT_LE(stats.maxQueueDepth, 16u);
    EXPECT_GT(stats.served, 0);
    const std::int64_t shed =
        stats.shedDeadline + stats.shedOverflow + stats.shedStale;
    EXPECT_GT(shed, 0);
    // Queueing delay is what admission control bounds: the mean wait
    // must stay near one service time even at 4x overload (the tail of
    // total latency is execution variance, not queueing).
    EXPECT_LT(stats.meanWaitMs(), 4.0 * stats.meanServiceMs() + 100.0);
}

TEST(Serve, DegradationLadderEngagesBeforeDropping)
{
    // A remote-only policy under overload with an aggressive degrade
    // threshold: queued-up requests get forced onto the local variant.
    ServeConfig config = configAtRate(2.0, 300);
    config.policyName = "cloud";
    config.admission.degradeDepth = 1;
    const ServeStats stats = runServe(testSim(), config);
    EXPECT_GT(stats.degraded, 0);
}

TEST(Serve, BreakerCapsWastedEnergyDuringBlackout)
{
    // Remote-heavy traffic through a blackout (both links down for
    // fault steps 150-449). Without the breaker every in-outage
    // request burns the full timeout+retry budget; with it only the
    // opening failure and bounded half-open probes pay.
    ServeConfig config = configAtRate(0.5, 600);
    config.scenario = env::ScenarioId::S1;
    config.policyName = "cloud";
    config.faults = fault::FaultPlan::fromName("blackout");

    config.breakerEnabled = true;
    const ServeStats with = runServe(testSim(), config);
    config.breakerEnabled = false;
    const ServeStats without = runServe(testSim(), config);

    EXPECT_GE(with.wlanBreaker.opens, 1);
    EXPECT_GT(with.breakerShortCircuits, 0);
    EXPECT_GT(without.wastedEnergyJ, 0.0);
    // The acceptance bar: wasted remote-attempt energy collapses to
    // about one retry cycle (plus probes) per outage.
    EXPECT_LT(with.wastedEnergyJ, 0.5 * without.wastedEnergyJ);
    // Each wasted cycle is at most one full retry ladder; the breaker
    // run's total must fit in (opens + probes) such cycles.
    const double cycleJ =
        without.wastedEnergyJ
        / static_cast<double>(std::max<std::int64_t>(
            1, without.faultFallbacks));
    const double cycles = static_cast<double>(
        with.wlanBreaker.opens + with.wlanBreaker.probes
        + with.p2pBreaker.opens + with.p2pBreaker.probes);
    EXPECT_LE(with.wastedEnergyJ, cycles * cycleJ + cycleJ);
}

TEST(Serve, CheckpointResumeRestoresStepAndConverges)
{
    const std::string path =
        testing::TempDir() + "autoscale_serve_resume.ckpt";
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());

    // The uninterrupted reference run.
    ServeConfig full = configAtRate(1.0, 400);
    const ServeStats reference = runServe(testSim(), full);

    // The same run "killed" after 200 arrivals, then resumed.
    ServeConfig first = full;
    first.totalRequests = 200;
    first.checkpointPath = path;
    first.checkpointIntervalRequests = 20;
    const ServeStats before = runServe(testSim(), first);
    EXPECT_GT(before.checkpointsWritten, 0);

    ServeConfig second = full;
    second.totalRequests = 200;
    second.checkpointPath = path;
    second.checkpointIntervalRequests = 20;
    second.resume = true;
    const ServeStats after = runServe(testSim(), second);
    EXPECT_TRUE(after.resumed);
    EXPECT_EQ(after.resumeSource, CheckpointSource::Primary);
    EXPECT_EQ(after.resumeStep, before.served);
    EXPECT_EQ(after.corruptCheckpoints, 0);

    // The resumed learner settles into the same steady-state decision
    // mix as the uninterrupted run.
    EXPECT_EQ(dominantCategory(after), dominantCategory(reference));
}

TEST(Serve, ResumeWithoutACheckpointIsAColdStart)
{
    const std::string path =
        testing::TempDir() + "autoscale_serve_cold.ckpt";
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
    ServeConfig config = configAtRate(1.0, 120);
    config.checkpointPath = path;
    config.resume = true;
    const ServeStats stats = runServe(testSim(), config);
    EXPECT_FALSE(stats.resumed);
    EXPECT_EQ(stats.resumeSource, CheckpointSource::None);
    EXPECT_GT(stats.checkpointsWritten, 0);
}

TEST(AdmissionQueue, MaxDepthSeenTracksPushHighWater)
{
    // Regression: the high-water mark is taken at push time, so a burst
    // that fills the queue and is then fully shed/drained still reports
    // the true peak (not the depth at the last pop).
    AdmissionConfig config;
    config.maxDepth = 8;
    AdmissionQueue queue(config);
    for (int i = 0; i < 8; ++i) {
        const QueuedRequest request{i, 0.0, 1e9, 0};
        EXPECT_EQ(queue.offer(request, 0.0, 1.0, 1.0),
                  AdmissionVerdict::Admitted);
    }
    EXPECT_EQ(queue.maxDepthSeen(), 8u);

    // Overflow sheds don't grow the queue or the high-water mark.
    const QueuedRequest overflow{99, 0.0, 1e9, 0};
    EXPECT_EQ(queue.offer(overflow, 0.0, 1.0, 1.0),
              AdmissionVerdict::ShedOverflow);
    EXPECT_EQ(queue.depth(), 8u);
    EXPECT_EQ(queue.maxDepthSeen(), 8u);

    // Fully drain: the mark must survive at the burst's peak.
    while (!queue.empty()) {
        queue.pop();
    }
    EXPECT_EQ(queue.maxDepthSeen(), 8u);

    // Refill shallower: the mark is a lifetime max, never lowered.
    const QueuedRequest late{100, 0.0, 1e9, 0};
    EXPECT_EQ(queue.offer(late, 0.0, 1.0, 1.0),
              AdmissionVerdict::Admitted);
    EXPECT_EQ(queue.maxDepthSeen(), 8u);
}

TEST(AdmissionQueue, PeekedPrefixSurvivesAppends)
{
    // The batch engine's gather contract: at(i) peeks without removal,
    // and later offers (push_back only) never move the peeked prefix.
    AdmissionQueue queue(AdmissionConfig{});
    for (int i = 0; i < 3; ++i) {
        const QueuedRequest request{i, static_cast<double>(i), 1e9, i};
        ASSERT_EQ(queue.offer(request, 0.0, 1.0, 1.0),
                  AdmissionVerdict::Admitted);
    }
    EXPECT_EQ(queue.at(0).id, 0);
    EXPECT_EQ(queue.at(2).id, 2);
    EXPECT_EQ(queue.depth(), 3u);

    const QueuedRequest late{7, 3.0, 1e9, 7};
    ASSERT_EQ(queue.offer(late, 0.0, 1.0, 1.0),
              AdmissionVerdict::Admitted);
    EXPECT_EQ(queue.at(0).id, 0);
    EXPECT_EQ(queue.at(1).id, 1);
    EXPECT_EQ(queue.at(2).id, 2);
    EXPECT_EQ(queue.at(3).id, 7);
    EXPECT_EQ(queue.pop().id, 0);
    EXPECT_EQ(queue.at(0).id, 1);
}

TEST(ServeDeath, FixedPoliciesCannotCheckpoint)
{
    ServeConfig config = configAtRate(1.0, 50);
    config.policyName = "cloud";
    config.checkpointPath = testing::TempDir() + "nope.ckpt";
    EXPECT_EXIT({ runServe(testSim(), config); },
                ::testing::ExitedWithCode(1), "autoscale policy only");
}

TEST(ServeDeath, UnknownPolicyIsFatal)
{
    ServeConfig config = configAtRate(1.0, 50);
    config.policyName = "oracle-of-delphi";
    EXPECT_EXIT({ runServe(testSim(), config); },
                ::testing::ExitedWithCode(1), "unknown policy");
}

} // namespace
} // namespace autoscale::serve
