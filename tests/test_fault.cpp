/**
 * @file
 * Fault-injection subsystem tests: step-window edges, backoff
 * arithmetic, preset plans, injector determinism, the
 * timeout/retry/forced-local-fallback semantics of runWithFaults, the
 * fault-free parity contract, and the headline behaviour — AutoScale
 * re-learns to go local while both links are down and recovers when
 * the signal returns.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "baselines/fixed.h"
#include "baselines/policy.h"
#include "dnn/model_zoo.h"
#include "fault/fault_injector.h"
#include "fault/fault_process.h"
#include "fault/retry.h"
#include "harness/autoscale_policy.h"
#include "harness/experiment.h"
#include "obs/trace_recorder.h"
#include "platform/device_zoo.h"

namespace autoscale {
namespace {

sim::InferenceSimulator
mi8Sim()
{
    return sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
}

sim::ExecutionTarget
cloudGpu()
{
    return sim::ExecutionTarget{sim::TargetPlace::Cloud,
                                platform::ProcKind::ServerGpu, 0,
                                dnn::Precision::FP32};
}

/** A plan whose only fault is a both-link blackout from step 0 on. */
fault::FaultPlan
alwaysDarkPlan()
{
    fault::FaultPlan plan;
    plan.name = "always-dark";
    plan.blackouts.push_back(
        {fault::StepWindow{0, 1 << 30, 0}, true, true});
    return plan;
}

TEST(FaultWindow, OneShotEdgesAreHalfOpen)
{
    const fault::StepWindow window{150, 300, 0};
    EXPECT_FALSE(window.contains(149));
    EXPECT_TRUE(window.contains(150));
    EXPECT_TRUE(window.contains(449));
    EXPECT_FALSE(window.contains(450));
    EXPECT_FALSE(window.contains(100000));
}

TEST(FaultWindow, PeriodicWindowRepeatsEveryPeriod)
{
    const fault::StepWindow window{40, 8, 80};
    EXPECT_FALSE(window.contains(39));
    EXPECT_TRUE(window.contains(40));
    EXPECT_TRUE(window.contains(47));
    EXPECT_FALSE(window.contains(48));
    // Next period: [120, 128).
    EXPECT_TRUE(window.contains(120));
    EXPECT_TRUE(window.contains(127));
    EXPECT_FALSE(window.contains(128));
    // Before the first occurrence nothing fires.
    EXPECT_FALSE(window.contains(0));
}

TEST(FaultWindow, ZeroDurationNeverFires)
{
    const fault::StepWindow window{10, 0, 50};
    for (std::int64_t step = 0; step < 200; ++step) {
        EXPECT_FALSE(window.contains(step));
    }
}

TEST(FaultRetry, BackoffGrowsExponentiallyFromTheFirstRetry)
{
    const fault::RetryPolicy retry;
    EXPECT_DOUBLE_EQ(retry.backoffMs(0), 0.0);
    EXPECT_DOUBLE_EQ(retry.backoffMs(1), 25.0);
    EXPECT_DOUBLE_EQ(retry.backoffMs(2), 50.0);
    EXPECT_DOUBLE_EQ(retry.backoffMs(3), 100.0);
    EXPECT_EQ(retry.maxAttempts(), 3);

    fault::RetryPolicy no_retries;
    no_retries.maxRetries = 0;
    EXPECT_EQ(no_retries.maxAttempts(), 1);
}

TEST(FaultPlan, PresetsParseAndDefaultIsDisabled)
{
    EXPECT_FALSE(fault::FaultPlan{}.enabled());
    EXPECT_FALSE(fault::FaultPlan::fromName("none").enabled());
    EXPECT_TRUE(fault::FaultPlan::fromName("blackout").enabled());
    EXPECT_TRUE(fault::FaultPlan::fromName("flaky-wifi").enabled());
    EXPECT_TRUE(fault::FaultPlan::fromName("cloud-brownout").enabled());
}

TEST(FaultPlanDeath, UnknownPresetIsFatal)
{
    EXPECT_EXIT({ fault::FaultPlan::fromName("solar-flare"); },
                ::testing::ExitedWithCode(1), "unknown fault preset");
}

TEST(FaultInjector, BlackoutPresetDropsBothLinksOverTheWindow)
{
    fault::FaultInjector injector(fault::FaultPlan::fromName("blackout"));
    for (std::int64_t step = 0; step < 600; ++step) {
        const fault::FaultState state = injector.next();
        const bool dark = step >= 150 && step < 450;
        EXPECT_EQ(state.wlanBlackout, dark) << "step " << step;
        EXPECT_EQ(state.p2pBlackout, dark) << "step " << step;
    }
}

TEST(FaultInjector, SamePlanSameSeedSameTimeline)
{
    const fault::FaultPlan plan = fault::FaultPlan::fromName("flaky-wifi");
    fault::FaultInjector a(plan);
    fault::FaultInjector b(plan);
    for (int step = 0; step < 500; ++step) {
        const fault::FaultState sa = a.next();
        const fault::FaultState sb = b.next();
        EXPECT_EQ(sa.wlanBlackout, sb.wlanBlackout);
        EXPECT_EQ(sa.p2pBlackout, sb.p2pBlackout);
        EXPECT_DOUBLE_EQ(sa.wlanRssiDropDb, sb.wlanRssiDropDb);
        EXPECT_DOUBLE_EQ(sa.transferDropProb, sb.transferDropProb);
        EXPECT_DOUBLE_EQ(sa.cloudSlowdown, sb.cloudSlowdown);
    }
}

TEST(FaultInjector, FaultSeedOnlyMovesTheRandomProcesses)
{
    // Deterministic windows are seed-independent; random fades differ.
    fault::FaultPlan plan_a = fault::FaultPlan::fromName("flaky-wifi");
    fault::FaultPlan plan_b = plan_a;
    plan_b.seed = plan_a.seed + 1;
    fault::FaultInjector a(plan_a);
    fault::FaultInjector b(plan_b);
    int fade_diffs = 0;
    for (int step = 0; step < 400; ++step) {
        const fault::FaultState sa = a.next();
        const fault::FaultState sb = b.next();
        EXPECT_EQ(sa.wlanBlackout, sb.wlanBlackout) << "step " << step;
        fade_diffs += sa.wlanRssiDropDb != sb.wlanRssiDropDb ? 1 : 0;
    }
    EXPECT_GT(fade_diffs, 0);
}

TEST(FaultSim, DeadLinkExhaustsRetriesAndFallsBackLocal)
{
    const sim::InferenceSimulator sim = mi8Sim();
    const dnn::Network &net = dnn::findModel("ResNet 50");
    env::EnvState env;
    env.fault.wlanBlackout = true;
    const fault::RetryPolicy retry;
    Rng rng(7);

    const sim::FaultOutcome result =
        sim.runWithFaults(net, cloudGpu(), env, retry, 50.0, rng);
    EXPECT_EQ(result.attempts, retry.maxAttempts());
    EXPECT_EQ(result.timeouts, retry.maxAttempts());
    EXPECT_TRUE(result.linkDown);
    EXPECT_TRUE(result.fellBack);
    EXPECT_EQ(result.executedTarget.place, sim::TargetPlace::Local);
    EXPECT_TRUE(result.outcome.feasible);

    // Energy accounting: the delivered outcome carries the waste of
    // the dead-link attempts on top of the fallback's own cost.
    EXPECT_GT(result.wastedEnergyJ, 0.0);
    EXPECT_GT(result.outcome.energyJ, result.wastedEnergyJ);
    EXPECT_GT(result.wastedMs, 0.0);
    EXPECT_GT(result.outcome.latencyMs, result.wastedMs);
    // Three timeouts plus two backoff gaps.
    EXPECT_DOUBLE_EQ(result.wastedMs,
                     3 * retry.timeoutMs + retry.backoffMs(1)
                         + retry.backoffMs(2));
}

TEST(FaultSim, CertainTransferDropAlsoExhaustsRetries)
{
    const sim::InferenceSimulator sim = mi8Sim();
    const dnn::Network &net = dnn::findModel("MobileNet v1");
    env::EnvState env;
    env.fault.transferDropProb = 1.0;
    const fault::RetryPolicy retry;
    Rng rng(7);

    const sim::FaultOutcome result =
        sim.runWithFaults(net, cloudGpu(), env, retry, 50.0, rng);
    EXPECT_EQ(result.drops, retry.maxAttempts());
    EXPECT_FALSE(result.linkDown);
    EXPECT_TRUE(result.fellBack);
    EXPECT_EQ(result.executedTarget.place, sim::TargetPlace::Local);
    EXPECT_GT(result.wastedEnergyJ, 0.0);
}

TEST(FaultSim, CloudSlowdownTripsTheDeadlineButSparesTheEdge)
{
    const sim::InferenceSimulator sim = mi8Sim();
    const dnn::Network &net = dnn::findModel("ResNet 50");
    env::EnvState env;
    env.fault.cloudSlowdown = 1e4;
    const fault::RetryPolicy retry;

    Rng rng_cloud(7);
    const sim::FaultOutcome slow = sim.runWithFaults(
        net, cloudGpu(), env, retry, 50.0, rng_cloud);
    EXPECT_EQ(slow.timeouts, retry.maxAttempts());
    EXPECT_TRUE(slow.fellBack);

    // The brownout is server-side: the Wi-Fi Direct edge path is fine.
    const sim::ExecutionTarget edge{sim::TargetPlace::ConnectedEdge,
                                    platform::ProcKind::MobileGpu, 0,
                                    dnn::Precision::FP16};
    Rng rng_edge(7);
    const sim::FaultOutcome fine =
        sim.runWithFaults(net, edge, env, retry, 50.0, rng_edge);
    EXPECT_FALSE(fine.fellBack);
    EXPECT_EQ(fine.timeouts, 0);
}

TEST(FaultSim, LocalDecisionsBypassTheRetryMachinery)
{
    const sim::InferenceSimulator sim = mi8Sim();
    const dnn::Network &net = dnn::findModel("MobileNet v1");
    env::EnvState env;
    env.fault.wlanBlackout = true;
    env.fault.p2pBlackout = true;
    const sim::ExecutionTarget cpu{sim::TargetPlace::Local,
                                   platform::ProcKind::MobileCpu, 0,
                                   dnn::Precision::FP32};
    Rng rng(3);
    const sim::FaultOutcome result = sim.runWithFaults(
        net, cpu, env, fault::RetryPolicy{}, 50.0, rng);
    EXPECT_EQ(result.attempts, 0);
    EXPECT_FALSE(result.fellBack);
    EXPECT_DOUBLE_EQ(result.wastedEnergyJ, 0.0);
}

TEST(FaultSim, InactiveFaultStateMatchesPlainRunExactly)
{
    // The parity contract: with a default FaultState and a deadline no
    // healthy attempt trips, runWithFaults consumes the same RNG
    // stream as run() and returns identical numbers.
    const sim::InferenceSimulator sim = mi8Sim();
    const env::EnvState env; // fault defaults to inactive
    for (const char *name : {"MobileNet v1", "ResNet 50", "MobileBERT"}) {
        const dnn::Network &net = dnn::findModel(name);
        Rng rng_plain(11);
        Rng rng_fault(11);
        const sim::Outcome plain =
            sim.run(net, cloudGpu(), env, rng_plain);
        const sim::FaultOutcome faulted = sim.runWithFaults(
            net, cloudGpu(), env, fault::RetryPolicy{}, 50.0, rng_fault);
        EXPECT_DOUBLE_EQ(faulted.outcome.latencyMs, plain.latencyMs);
        EXPECT_DOUBLE_EQ(faulted.outcome.energyJ, plain.energyJ);
        EXPECT_EQ(faulted.attempts, 1);
        EXPECT_EQ(faulted.timeouts, 0);
        EXPECT_FALSE(faulted.fellBack);
        // The next draw from both generators must agree too (no
        // extra RNG consumption on the fault path).
        EXPECT_EQ(rng_plain.next(), rng_fault.next());
    }
}

TEST(FaultSim, BestLocalTargetIsFeasibleAndMeetsAccuracy)
{
    const sim::InferenceSimulator sim = mi8Sim();
    const env::EnvState env;
    for (const dnn::Network *net : harness::allZooNetworks()) {
        const sim::ExecutionTarget target =
            sim.bestLocalTarget(*net, env, 50.0);
        EXPECT_EQ(target.place, sim::TargetPlace::Local);
        const sim::Outcome outcome = sim.expected(*net, target, env);
        EXPECT_TRUE(outcome.feasible) << net->name();
        EXPECT_GE(outcome.accuracyPct, 50.0) << net->name();
    }
}

TEST(FaultHarness, PermanentBlackoutForcesEveryCloudDecisionLocal)
{
    const sim::InferenceSimulator sim = mi8Sim();
    auto cloud_policy = baselines::makeCloudPolicy(sim);
    harness::EvalOptions options;
    options.runsPerCombo = 6;
    options.compareOracle = false;
    options.faults = alwaysDarkPlan();
    const auto nets = std::vector<const dnn::Network *>{
        &dnn::findModel("MobileNet v1")};
    const harness::RunStats stats = harness::evaluatePolicy(
        *cloud_policy, sim, nets, {env::ScenarioId::S1}, options);
    EXPECT_EQ(stats.count(), 6);
    EXPECT_EQ(stats.faultFallbacks(), 6);
    EXPECT_DOUBLE_EQ(stats.faultFallbackRatio(), 1.0);
    EXPECT_EQ(stats.faultTimeouts(), 6 * fault::RetryPolicy{}.maxAttempts());
    EXPECT_GT(stats.faultWastedEnergyJ(), 0.0);
}

TEST(FaultHarness, TraceEventsCarryTheFaultAnnotations)
{
    const sim::InferenceSimulator sim = mi8Sim();
    auto cloud_policy = baselines::makeCloudPolicy(sim);
    obs::TraceRecorder trace;
    harness::EvalOptions options;
    options.runsPerCombo = 3;
    options.compareOracle = false;
    options.faults = alwaysDarkPlan();
    options.obs.trace = &trace;
    const auto nets = std::vector<const dnn::Network *>{
        &dnn::findModel("MobileNet v1")};
    harness::evaluatePolicy(*cloud_policy, sim, nets,
                            {env::ScenarioId::S1}, options);
    ASSERT_EQ(trace.size(), 3u);
    for (const obs::DecisionEvent &event : trace.snapshot()) {
        EXPECT_EQ(event.faultAttempts, fault::RetryPolicy{}.maxAttempts());
        EXPECT_TRUE(event.faultLinkDown);
        EXPECT_TRUE(event.faultFallback);
        EXPECT_GT(event.faultWastedEnergyJ, 0.0);
    }
}

TEST(FaultHarness, LooWithFaultsIsBitIdenticalAcrossJobs)
{
    const sim::InferenceSimulator sim = mi8Sim();
    const auto nets = std::vector<const dnn::Network *>{
        &dnn::findModel("MobileNet v1"), &dnn::findModel("MobileNet v2"),
        &dnn::findModel("ResNet 50")};

    auto run = [&](int jobs, obs::TraceRecorder *trace) {
        harness::EvalOptions options;
        options.runsPerCombo = 4;
        options.looWarmupRuns = 5;
        options.compareOracle = false;
        options.jobs = jobs;
        options.faults = fault::FaultPlan::fromName("flaky-wifi");
        options.obs.trace = trace;
        return harness::evaluateAutoScaleLoo(
            sim, nets, {env::ScenarioId::S1, env::ScenarioId::S4}, 15,
            options);
    };
    obs::TraceRecorder trace1, trace4;
    const harness::RunStats serial = run(1, &trace1);
    const harness::RunStats parallel = run(4, &trace4);

    EXPECT_EQ(serial.count(), parallel.count());
    EXPECT_DOUBLE_EQ(serial.meanEnergyJ(), parallel.meanEnergyJ());
    EXPECT_DOUBLE_EQ(serial.meanLatencyMs(), parallel.meanLatencyMs());
    EXPECT_EQ(serial.faultRetries(), parallel.faultRetries());
    EXPECT_EQ(serial.faultTimeouts(), parallel.faultTimeouts());
    EXPECT_EQ(serial.faultDrops(), parallel.faultDrops());
    EXPECT_EQ(serial.faultFallbacks(), parallel.faultFallbacks());
    EXPECT_DOUBLE_EQ(serial.faultWastedEnergyJ(),
                     parallel.faultWastedEnergyJ());

    std::ostringstream jsonl1, jsonl4;
    trace1.writeJsonl(jsonl1);
    trace4.writeJsonl(jsonl4);
    EXPECT_EQ(jsonl1.str(), jsonl4.str());
}

TEST(FaultProcessUnits, RssiSegmentAttenuatesOnlyInsideItsWindow)
{
    fault::RssiSegment wlanSeg(fault::StepWindow{80, 60, 0}, true, 30.0);
    fault::RssiSegment p2pSeg(fault::StepWindow{200, 40, 120}, false,
                              25.0);
    Rng rng(1);
    for (const std::int64_t step : {0L, 79L, 80L, 139L, 140L}) {
        fault::FaultState state;
        wlanSeg.apply(step, state, rng);
        const bool inside = step >= 80 && step < 140;
        EXPECT_DOUBLE_EQ(state.wlanRssiDropDb, inside ? 30.0 : 0.0)
            << "step " << step;
        EXPECT_DOUBLE_EQ(state.p2pRssiDropDb, 0.0);
    }
    // Periodic p2p segment: fires in [200, 240), again in [320, 360).
    for (const std::int64_t step : {199L, 200L, 239L, 240L, 320L}) {
        fault::FaultState state;
        p2pSeg.apply(step, state, rng);
        const bool inside =
            (step >= 200 && step < 240) || (step >= 320 && step < 360);
        EXPECT_DOUBLE_EQ(state.p2pRssiDropDb, inside ? 25.0 : 0.0)
            << "step " << step;
        EXPECT_DOUBLE_EQ(state.wlanRssiDropDb, 0.0);
    }
    // Segments floor via max: a deeper existing fade is not reduced.
    fault::FaultState state;
    state.wlanRssiDropDb = 45.0;
    wlanSeg.apply(100, state, rng);
    EXPECT_DOUBLE_EQ(state.wlanRssiDropDb, 45.0);
}

TEST(FaultProcessUnits, CoRunnerSurgeFloorsUtilizationInsideItsWindow)
{
    fault::CoRunnerSurge surge(fault::StepWindow{50, 100, 0}, 0.9, 0.6);
    Rng rng(1);
    fault::FaultState outside;
    surge.apply(49, outside, rng);
    EXPECT_DOUBLE_EQ(outside.coCpuFloor, 0.0);
    EXPECT_DOUBLE_EQ(outside.coMemFloor, 0.0);
    EXPECT_FALSE(outside.active());

    fault::FaultState inside;
    surge.apply(50, inside, rng);
    EXPECT_DOUBLE_EQ(inside.coCpuFloor, 0.9);
    EXPECT_DOUBLE_EQ(inside.coMemFloor, 0.6);
    EXPECT_TRUE(inside.active());

    // Floors merge with max, never lower an existing surge.
    fault::FaultState merged;
    merged.coCpuFloor = 0.95;
    merged.coMemFloor = 0.1;
    surge.apply(60, merged, rng);
    EXPECT_DOUBLE_EQ(merged.coCpuFloor, 0.95);
    EXPECT_DOUBLE_EQ(merged.coMemFloor, 0.6);
}

TEST(FaultProcessUnits, SegmentsAndSurgesDrawNothingFromTheRng)
{
    // The scenario-file mobility/interference windows are documented
    // as zero-RNG-draw: layering them onto a plan must not shift any
    // random process's stream. Compare the fade timeline of a
    // fades-only plan against the same plan plus segments and surges.
    fault::FaultPlan bare;
    bare.fades.push_back(fault::FaultPlan::Fade{true, 22.0, 0.35});

    fault::FaultPlan layered = bare;
    layered.segments.push_back(
        fault::FaultPlan::Segment{fault::StepWindow{10, 20, 0}, true,
                                  30.0});
    layered.surges.push_back(
        fault::FaultPlan::Surge{fault::StepWindow{15, 5, 0}, 0.8, 0.5});

    fault::FaultInjector a(bare);
    fault::FaultInjector b(layered);
    for (int step = 0; step < 200; ++step) {
        const fault::FaultState sa = a.next();
        const fault::FaultState sb = b.next();
        // Outside the segment window the states agree exactly; inside
        // it only the deterministic attenuation floor differs.
        const bool inSegment = step >= 10 && step < 30;
        if (inSegment) {
            EXPECT_GE(sb.wlanRssiDropDb, 30.0) << "step " << step;
            EXPECT_DOUBLE_EQ(std::max(sa.wlanRssiDropDb, 30.0),
                             sb.wlanRssiDropDb)
                << "step " << step;
        } else {
            EXPECT_DOUBLE_EQ(sa.wlanRssiDropDb, sb.wlanRssiDropDb)
                << "step " << step;
        }
        EXPECT_DOUBLE_EQ(sb.coCpuFloor,
                         step >= 15 && step < 20 ? 0.8 : 0.0);
    }
}

TEST(FaultLearning, AutoScaleGoesLocalDuringBlackoutAndRecovers)
{
    // The acceptance scenario of the fault extension (and the story of
    // bench_fig_faults): a ResNet 50 stream in S1 prefers the remote
    // targets, shifts almost fully local while the blackout preset has
    // both links down over steps [150, 450), and swings back once the
    // carrier returns.
    const sim::InferenceSimulator sim = mi8Sim();
    const dnn::Network &net = dnn::findModel("ResNet 50");
    auto policy = harness::makeAutoScalePolicy(sim, 1);
    Rng train_rng(99);
    harness::trainPolicy(*policy, sim, {&net}, {env::ScenarioId::S1}, 400,
                         train_rng);

    const sim::InferenceRequest request = sim::makeRequest(net);
    env::Scenario scenario(env::ScenarioId::S1,
                           fault::FaultPlan::fromName("blackout"));
    Rng rng(17);
    int local_before = 0, local_during = 0, local_after = 0;
    for (int step = 0; step < 600; ++step) {
        env::EnvState env = scenario.next(rng);
        const baselines::Decision decision =
            policy->decide(request, env, rng);
        const sim::FaultOutcome result =
            baselines::executeDecisionWithFaults(
                sim, request, decision, env, fault::RetryPolicy{}, rng);
        policy->feedback(result.outcome);
        const bool local = !decision.partitioned
            && decision.target.place == sim::TargetPlace::Local;
        if (local) {
            (step < 150 ? local_before
             : step < 450 ? local_during : local_after)++;
        }
    }
    const double before = local_before / 150.0;
    const double during = local_during / 300.0;
    const double after = local_after / 150.0;

    // Remote-dominated before, near-fully local during, recovered
    // after. Generous margins keep this robust to RNG details while
    // still pinning the qualitative arc.
    EXPECT_LT(before, 0.5);
    EXPECT_GT(during, before + 0.3);
    EXPECT_GT(during, 0.7);
    EXPECT_LT(after, during - 0.3);
}

} // namespace
} // namespace autoscale
