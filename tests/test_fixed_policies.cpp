/**
 * @file
 * Tests for the fixed baselines of Section V-A: Edge (CPU FP32),
 * Edge (Best), Cloud, and Connected Edge.
 */

#include <gtest/gtest.h>

#include "baselines/fixed.h"
#include "dnn/model_zoo.h"
#include "platform/device_zoo.h"

namespace autoscale::baselines {
namespace {

sim::InferenceSimulator
mi8Sim()
{
    return sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
}

TEST(EdgeCpuFp32, AlwaysPicksTheCpuAtTopFrequency)
{
    const sim::InferenceSimulator sim = mi8Sim();
    auto policy = makeEdgeCpuFp32Policy(sim);
    EXPECT_EQ(policy->name(), "Edge (CPU FP32)");
    Rng rng(1);
    for (const auto &net : dnn::modelZoo()) {
        const sim::InferenceRequest request = sim::makeRequest(net);
        const Decision decision =
            policy->decide(request, env::EnvState{}, rng);
        EXPECT_FALSE(decision.partitioned);
        EXPECT_EQ(decision.target.place, sim::TargetPlace::Local);
        EXPECT_EQ(decision.target.proc, platform::ProcKind::MobileCpu);
        EXPECT_EQ(decision.target.precision, dnn::Precision::FP32);
        EXPECT_EQ(decision.target.vfIndex,
                  sim.localDevice().cpu().maxVfIndex());
    }
}

TEST(EdgeBest, PicksMostEfficientLocalProcessorPerNetwork)
{
    const sim::InferenceSimulator sim = mi8Sim();
    auto policy = makeEdgeBestPolicy(sim);
    Rng rng(2);
    const env::EnvState clean;
    for (const auto &net : dnn::modelZoo()) {
        const sim::InferenceRequest request = sim::makeRequest(net);
        const Decision decision = policy->decide(request, clean, rng);
        ASSERT_FALSE(decision.partitioned);
        EXPECT_EQ(decision.target.place, sim::TargetPlace::Local);
        // The chosen target must be feasible and at least as efficient
        // as the CPU baseline under the clean environment.
        const sim::Outcome chosen =
            sim.expected(net, decision.target, clean);
        ASSERT_TRUE(chosen.feasible) << net.name();
        sim::ExecutionTarget cpu{sim::TargetPlace::Local,
                                 platform::ProcKind::MobileCpu,
                                 sim.localDevice().cpu().maxVfIndex(),
                                 dnn::Precision::FP32};
        const sim::Outcome baseline = sim.expected(net, cpu, clean);
        EXPECT_LE(chosen.energyJ, baseline.energyJ * 1.0001) << net.name();
    }
}

TEST(EdgeBest, UsesCoProcessorForConvHeavyNetworks)
{
    const sim::InferenceSimulator sim = mi8Sim();
    auto policy = makeEdgeBestPolicy(sim);
    Rng rng(3);
    const dnn::Network net = dnn::makeInceptionV1();
    const sim::InferenceRequest request = sim::makeRequest(net);
    const Decision decision =
        policy->decide(request, env::EnvState{}, rng);
    EXPECT_NE(decision.target.proc, platform::ProcKind::MobileCpu);
}

TEST(EdgeBest, FallsBackToCpuForMobileBert)
{
    // Co-processors cannot run MobileBERT, so the best local option is
    // the CPU.
    const sim::InferenceSimulator sim = mi8Sim();
    auto policy = makeEdgeBestPolicy(sim);
    Rng rng(4);
    const dnn::Network bert = dnn::makeMobileBert();
    const sim::InferenceRequest request = sim::makeRequest(bert);
    const Decision decision =
        policy->decide(request, env::EnvState{}, rng);
    EXPECT_EQ(decision.target.proc, platform::ProcKind::MobileCpu);
    EXPECT_TRUE(sim.isFeasible(bert, decision.target));
}

TEST(EdgeBest, DecisionIsCachedPerNetwork)
{
    const sim::InferenceSimulator sim = mi8Sim();
    auto policy = makeEdgeBestPolicy(sim);
    Rng rng(5);
    const dnn::Network net = dnn::makeMobileNetV3();
    const sim::InferenceRequest request = sim::makeRequest(net);
    const Decision first = policy->decide(request, env::EnvState{}, rng);
    // Offline profiling: the decision must not change with the runtime
    // environment (that is exactly its weakness under variance).
    env::EnvState hog;
    hog.coCpuUtil = 0.9;
    const Decision second = policy->decide(request, hog, rng);
    EXPECT_TRUE(first.target == second.target);
}

TEST(Cloud, AlwaysPicksTheServerGpu)
{
    const sim::InferenceSimulator sim = mi8Sim();
    auto policy = makeCloudPolicy(sim);
    EXPECT_EQ(policy->name(), "Cloud");
    Rng rng(6);
    for (const auto &net : dnn::modelZoo()) {
        const sim::InferenceRequest request = sim::makeRequest(net);
        const Decision decision =
            policy->decide(request, env::EnvState{}, rng);
        EXPECT_EQ(decision.target.place, sim::TargetPlace::Cloud);
        EXPECT_EQ(decision.target.proc, platform::ProcKind::ServerGpu);
        EXPECT_TRUE(sim.isFeasible(net, decision.target));
    }
}

TEST(ConnectedEdge, AlwaysOffloadsToTheTablet)
{
    const sim::InferenceSimulator sim = mi8Sim();
    auto policy = makeConnectedEdgePolicy(sim);
    EXPECT_EQ(policy->name(), "Connected Edge");
    Rng rng(7);
    for (const auto &net : dnn::modelZoo()) {
        const sim::InferenceRequest request = sim::makeRequest(net);
        const Decision decision =
            policy->decide(request, env::EnvState{}, rng);
        EXPECT_EQ(decision.target.place, sim::TargetPlace::ConnectedEdge);
        EXPECT_TRUE(sim.isFeasible(net, decision.target)) << net.name();
    }
}

TEST(Decision, CategoryStrings)
{
    Decision whole = makeTargetDecision(sim::ExecutionTarget{
        sim::TargetPlace::Cloud, platform::ProcKind::ServerGpu, 0,
        dnn::Precision::FP32});
    EXPECT_EQ(whole.category(), "Cloud");

    sim::PartitionSpec spec;
    spec.remotePlace = sim::TargetPlace::Cloud;
    Decision part = makePartitionDecision(spec);
    EXPECT_EQ(part.category(), "Partitioned (Cloud)");
}

TEST(ExecuteDecision, RunsBothDecisionShapes)
{
    const sim::InferenceSimulator sim = mi8Sim();
    const dnn::Network net = dnn::makeMobileNetV1();
    const sim::InferenceRequest request = sim::makeRequest(net);
    Rng rng(8);

    const Decision whole = makeTargetDecision(sim::ExecutionTarget{
        sim::TargetPlace::Local, platform::ProcKind::MobileCpu,
        sim.localDevice().cpu().maxVfIndex(), dnn::Precision::FP32});
    EXPECT_TRUE(
        executeDecision(sim, request, whole, env::EnvState{}, rng)
            .feasible);

    sim::PartitionSpec spec;
    spec.splitLayer = 3;
    spec.localProc = platform::ProcKind::MobileCpu;
    spec.vfIndex = sim.localDevice().cpu().maxVfIndex();
    const Decision part = makePartitionDecision(spec);
    EXPECT_TRUE(
        executeDecision(sim, request, part, env::EnvState{}, rng)
            .feasible);
    // expectedDecision mirrors executeDecision without noise.
    const sim::Outcome a =
        expectedDecision(sim, request, part, env::EnvState{});
    const sim::Outcome b =
        expectedDecision(sim, request, part, env::EnvState{});
    EXPECT_DOUBLE_EQ(a.latencyMs, b.latencyMs);
}

} // namespace
} // namespace autoscale::baselines
