/**
 * @file
 * Tests for the synthetic workload generator: spec-to-network fidelity,
 * accuracy registration, random-spec coverage of the Table I ranges,
 * and schedulability of networks the zoo never contained.
 */

#include <gtest/gtest.h>

#include <set>

#include "baselines/oracle.h"
#include "core/state.h"
#include "dnn/accuracy.h"
#include "dnn/synthetic.h"
#include "platform/device_zoo.h"
#include "sim/simulator.h"

namespace autoscale::dnn {
namespace {

TEST(Synthetic, BuildsTheRequestedComposition)
{
    SyntheticSpec spec;
    spec.name = "synthetic-test-comp";
    spec.convLayers = 40;
    spec.fcLayers = 3;
    spec.rcLayers = 0;
    spec.totalMacsM = 800.0;
    spec.totalParamsM = 6.0;
    const Network net = synthesizeNetwork(spec);
    EXPECT_EQ(net.numConv(), 40);
    EXPECT_EQ(net.numFc(), 3);
    EXPECT_EQ(net.numRc(), 0);
    EXPECT_NEAR(net.totalMacsMillions(), 800.0, 80.0);
    EXPECT_NEAR(static_cast<double>(net.totalParamBytes()) / 4e6, 6.0,
                0.9);
}

TEST(Synthetic, RegistersAnAccuracyRow)
{
    SyntheticSpec spec;
    spec.name = "synthetic-test-acc";
    spec.convLayers = 10;
    spec.accuracyFp32 = 71.5;
    spec.int8Penalty = 10.0;
    synthesizeNetwork(spec);
    ASSERT_TRUE(hasAccuracyEntry(spec.name));
    EXPECT_DOUBLE_EQ(inferenceAccuracy(spec.name, Precision::FP32), 71.5);
    EXPECT_DOUBLE_EQ(inferenceAccuracy(spec.name, Precision::INT8), 61.5);
}

TEST(Synthetic, CannotShadowCanonicalEntries)
{
    // Building a zoo-named spec must not clobber the Table III row.
    SyntheticSpec spec;
    spec.name = "MobileNet v3";
    spec.convLayers = 23;
    spec.fcLayers = 20;
    spec.accuracyFp32 = 10.0; // wrong on purpose
    synthesizeNetwork(spec);
    EXPECT_DOUBLE_EQ(inferenceAccuracy("MobileNet v3", Precision::FP32),
                     75.2);
}

TEST(Synthetic, RecurrentNetworksBlockCoProcessors)
{
    SyntheticSpec spec;
    spec.name = "synthetic-test-rc";
    spec.convLayers = 0;
    spec.fcLayers = 1;
    spec.rcLayers = 12;
    const Network net = synthesizeNetwork(spec);
    EXPECT_FALSE(net.supportedOnCoProcessors());
}

TEST(Synthetic, RandomSpecsCoverTheStateSpaceBroadly)
{
    Rng rng(31);
    core::StateEncoder encoder;
    std::set<core::StateId> states;
    int recurrent = 0;
    int fc_heavy = 0;
    for (int i = 0; i < 200; ++i) {
        const SyntheticSpec spec = randomSpec(rng);
        EXPECT_GE(spec.totalMacsM, 100.0);
        EXPECT_LE(spec.totalMacsM, 6000.0);
        const Network net = synthesizeNetwork(spec);
        states.insert(
            encoder.encode(core::makeStateFeatures(net, env::EnvState{})));
        if (net.numRc() >= 10) {
            ++recurrent;
        }
        if (net.numFc() >= 10) {
            ++fc_heavy;
        }
    }
    // Many more NN-feature bins than the ten-network zoo reaches.
    EXPECT_GE(states.size(), 15u);
    EXPECT_GT(recurrent, 5);
    EXPECT_GT(fc_heavy, 15);
}

TEST(Synthetic, NamesAreUnique)
{
    Rng rng(33);
    std::set<std::string> names;
    for (int i = 0; i < 50; ++i) {
        names.insert(randomSpec(rng).name);
    }
    EXPECT_EQ(names.size(), 50u);
}

TEST(Synthetic, OracleSchedulesUnseenNetworks)
{
    // Every synthesized network must be schedulable end to end.
    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    baselines::OptOracle oracle(sim);
    Rng rng(35);
    for (int i = 0; i < 20; ++i) {
        const Network net = synthesizeNetwork(randomSpec(rng));
        const sim::InferenceRequest request = sim::makeRequest(net);
        const sim::Outcome o =
            oracle.optimalOutcome(request, env::EnvState{});
        ASSERT_TRUE(o.feasible) << net.name();
        EXPECT_GE(o.accuracyPct, request.accuracyTargetPct) << net.name();
    }
}

} // namespace
} // namespace autoscale::dnn
