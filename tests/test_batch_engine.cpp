/**
 * @file
 * Parity suite for the batched serve hot path (DESIGN.md §14): the
 * BatchDecisionEngine SoA gather/commit loop must be observationally
 * invisible. Across devices × fault presets × load levels, every batch
 * size — and the --direct cost-table bypass underneath — must produce
 * bit-identical serving statistics, trace bytes, metrics dumps, and
 * post-run RNG fingerprints.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "platform/device_zoo.h"
#include "serve/server.h"
#include "sim/simulator.h"

namespace autoscale::serve {
namespace {

/** Everything one mode's run exports. */
struct RunArtifacts {
    ServeStats stats;
    std::string traceJsonl;
    std::string metricsText;
};

ServeConfig
parityConfig(const std::string &faultPreset, double rateX,
             std::int64_t requests)
{
    ServeConfig config;
    config.scenario = env::ScenarioId::D3;
    config.faults = fault::FaultPlan::fromName(faultPreset);
    config.totalRequests = requests;
    config.trainRunsPerCombo = 5;
    config.seed = 23;
    // Absolute rate (device-independent here; parity needs identical
    // arrivals within one device, not comparable load across devices).
    config.arrival.ratePerSec = rateX * 50.0;
    return config;
}

/** Devices are move-only (unique_ptr processors), so modes get a
 * fresh one from a factory instead of sharing a copied instance. */
using DeviceFactory = platform::Device (*)();

RunArtifacts
runWith(DeviceFactory makeDevice, const ServeConfig &base,
        int batchSize, bool useCostCache)
{
    sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(makeDevice());
    sim.setUseCostCache(useCostCache);
    ServeConfig config = base;
    config.batchSize = batchSize;

    obs::MetricsRegistry metrics;
    obs::TraceRecorder trace;
    obs::ObsContext obs;
    obs.metrics = &metrics;
    obs.trace = &trace;

    RunArtifacts artifacts;
    artifacts.stats = runServe(sim, config, obs);
    std::ostringstream traceOs;
    trace.writeJsonl(traceOs);
    artifacts.traceJsonl = traceOs.str();
    std::ostringstream metricsOs;
    metrics.writeText(metricsOs);
    artifacts.metricsText = metricsOs.str();
    return artifacts;
}

/** Bitwise comparison of every ServeStats field two modes can differ
 * in (EXPECT_EQ on doubles is exact, which is the contract). */
void
expectStatsEqual(const ServeStats &a, const ServeStats &b,
                 const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.shedDeadline, b.shedDeadline);
    EXPECT_EQ(a.shedOverflow, b.shedOverflow);
    EXPECT_EQ(a.shedStale, b.shedStale);
    EXPECT_EQ(a.qosViolations, b.qosViolations);
    EXPECT_EQ(a.accuracyViolations, b.accuracyViolations);
    EXPECT_EQ(a.faultFallbacks, b.faultFallbacks);
    EXPECT_EQ(a.breakerShortCircuits, b.breakerShortCircuits);
    EXPECT_EQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.wastedEnergyJ, b.wastedEnergyJ);
    EXPECT_EQ(a.totalWaitMs, b.totalWaitMs);
    EXPECT_EQ(a.totalServiceMs, b.totalServiceMs);
    EXPECT_EQ(a.latenciesMs, b.latenciesMs);
    EXPECT_EQ(a.maxQueueDepth, b.maxQueueDepth);
    EXPECT_EQ(a.endClockMs, b.endClockMs);
    EXPECT_EQ(a.categoryCounts, b.categoryCounts);
    EXPECT_EQ(a.rngFingerprint, b.rngFingerprint);
}

void
expectArtifactsEqual(const RunArtifacts &a, const RunArtifacts &b,
                     const std::string &label)
{
    expectStatsEqual(a.stats, b.stats, label);
    EXPECT_EQ(a.traceJsonl, b.traceJsonl) << label;
    EXPECT_EQ(a.metricsText, b.metricsText) << label;
}

/**
 * The full sweep: for each (device, fault preset, load) cell, the
 * scalar loop is the reference and --batch 1, --batch 64, the odd
 * --batch 7 (partial final batches), and --direct under --batch 64
 * must all reproduce it bit for bit.
 */
TEST(BatchEngineParity, AllModesBitIdenticalAcrossDevicesAndFaults)
{
    struct DeviceCase {
        const char *name;
        DeviceFactory factory;
    };
    const std::vector<DeviceCase> devices = {
        {"Mi8Pro", &platform::makeMi8Pro},
        {"GalaxyS10e", &platform::makeGalaxyS10e},
        {"MotoXForce", &platform::makeMotoXForce},
    };
    const std::vector<const char *> faultPresets = {
        "none", "blackout", "flaky-wifi", "cloud-brownout"};

    for (const DeviceCase &device : devices) {
        for (const char *preset : faultPresets) {
            const ServeConfig config = parityConfig(preset, 2.0, 150);
            const RunArtifacts scalar =
                runWith(device.factory, config, 0, true);
            const std::string label =
                std::string(device.name) + "/" + preset;
            expectArtifactsEqual(
                scalar, runWith(device.factory, config, 1, true),
                label + "/batch1");
            expectArtifactsEqual(
                scalar, runWith(device.factory, config, 7, true),
                label + "/batch7");
            expectArtifactsEqual(
                scalar, runWith(device.factory, config, 64, true),
                label + "/batch64");
            expectArtifactsEqual(
                scalar, runWith(device.factory, config, 64, false),
                label + "/direct");
        }
    }
}

/**
 * Overload pressure exercises the paths batching interleaves with:
 * shedding at admission, stale re-checks at dequeue, the degradation
 * ladder, and deep-queue gathers with admissions arriving mid-commit.
 */
TEST(BatchEngineParity, OverloadWithSheddingAndDegradation)
{
    ServeConfig config = parityConfig("flaky-wifi", 6.0, 300);
    config.admission.maxDepth = 16;
    // Remote-heavy traffic plus a hair-trigger degrade threshold
    // guarantees the ladder fires (queue pressure only downgrades
    // remote/partitioned picks).
    config.admission.degradeDepth = 1;
    config.policyName = "cloud";
    const RunArtifacts scalar =
        runWith(&platform::makeMi8Pro, config, 0, true);
    EXPECT_GT(scalar.stats.shedOverflow + scalar.stats.shedDeadline
                  + scalar.stats.shedStale,
              0);
    EXPECT_GT(scalar.stats.degraded, 0);
    expectArtifactsEqual(
        scalar, runWith(&platform::makeMi8Pro, config, 64, true),
        "overload/batch64");
    expectArtifactsEqual(
        scalar, runWith(&platform::makeMi8Pro, config, 3, true),
        "overload/batch3");
}

/** Fixed baselines share the serving loop; parity must hold without a
 * learner (no Q-table, no checkpointing) too. */
TEST(BatchEngineParity, FixedPolicyModesMatch)
{
    ServeConfig config = parityConfig("cloud-brownout", 2.0, 120);
    config.policyName = "cloud";
    config.trainRunsPerCombo = 0;
    const RunArtifacts scalar =
        runWith(&platform::makeMi8Pro, config, 0, true);
    expectArtifactsEqual(
        scalar, runWith(&platform::makeMi8Pro, config, 64, true),
        "cloud-policy/batch64");
}

/** Checkpoint artifacts are mode-independent too: the final checkpoint
 * written by a batched run is byte-identical to the scalar run's. */
TEST(BatchEngineParity, CheckpointBytesMatchAcrossModes)
{
    const std::string scalarPath =
        testing::TempDir() + "/batch_parity_scalar.ckpt";
    const std::string batchedPath =
        testing::TempDir() + "/batch_parity_batched.ckpt";
    ServeConfig config = parityConfig("none", 2.0, 120);
    config.checkpointIntervalRequests = 40;

    config.checkpointPath = scalarPath;
    config.batchSize = 0;
    sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    const ServeStats scalar = runServe(sim, config);

    config.checkpointPath = batchedPath;
    config.batchSize = 64;
    const ServeStats batched = runServe(sim, config);

    EXPECT_EQ(scalar.checkpointsWritten, batched.checkpointsWritten);
    std::ifstream scalarIn(scalarPath, std::ios::binary);
    std::ifstream batchedIn(batchedPath, std::ios::binary);
    ASSERT_TRUE(scalarIn.good());
    ASSERT_TRUE(batchedIn.good());
    std::stringstream scalarBytes;
    std::stringstream batchedBytes;
    scalarBytes << scalarIn.rdbuf();
    batchedBytes << batchedIn.rdbuf();
    EXPECT_EQ(scalarBytes.str(), batchedBytes.str());
    std::remove(scalarPath.c_str());
    std::remove(batchedPath.c_str());
}

/** The fingerprint must actually detect stream divergence: different
 * seeds must not collide (a smoke test that it hashes real draws). */
TEST(BatchEngineParity, FingerprintDiscriminatesSeeds)
{
    ServeConfig config = parityConfig("none", 2.0, 60);
    config.trainRunsPerCombo = 0;
    sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    const ServeStats a = runServe(sim, config);
    config.seed = 24;
    const ServeStats b = runServe(sim, config);
    EXPECT_NE(a.rngFingerprint, b.rngFingerprint);
}

} // namespace
} // namespace autoscale::serve
