/**
 * @file
 * Tests for the dense Q-table: indexing, argmax, random initialization,
 * serialization, and the Section VI-C memory footprint.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <locale>
#include <sstream>

#include "core/qtable.h"
#include "util/rng.h"

namespace autoscale::core {
namespace {

TEST(QTable, StartsZeroed)
{
    QTable table(4, 3);
    for (int s = 0; s < 4; ++s) {
        for (int a = 0; a < 3; ++a) {
            EXPECT_FLOAT_EQ(table.at(s, a), 0.0f);
        }
    }
}

TEST(QTable, ReadWriteRoundTrip)
{
    QTable table(10, 5);
    table.at(7, 3) = 1.25f;
    EXPECT_FLOAT_EQ(table.at(7, 3), 1.25f);
    EXPECT_FLOAT_EQ(table.at(3, 7 % 5), 0.0f);
}

TEST(QTable, BestActionArgmaxAndTies)
{
    QTable table(2, 4);
    table.at(0, 1) = 5.0f;
    table.at(0, 2) = 5.0f; // tie breaks to the lowest id
    table.at(0, 3) = 4.0f;
    EXPECT_EQ(table.bestAction(0), 1);
    EXPECT_DOUBLE_EQ(table.maxValue(0), 5.0);
    // Untouched row: all zeros, argmax is action 0.
    EXPECT_EQ(table.bestAction(1), 0);
}

TEST(QTable, RandomizeStaysInRange)
{
    QTable table(50, 20);
    Rng rng(3);
    table.randomize(rng, 0.0, 1.0);
    bool any_nonzero = false;
    for (int s = 0; s < 50; ++s) {
        for (int a = 0; a < 20; ++a) {
            const float v = table.at(s, a);
            EXPECT_GE(v, 0.0f);
            EXPECT_LT(v, 1.0f);
            any_nonzero = any_nonzero || v != 0.0f;
        }
    }
    EXPECT_TRUE(any_nonzero);
}

TEST(QTable, MemoryFootprintMatchesSectionVIC)
{
    // The paper reports a 0.4 MB requirement for the full design space;
    // a float table of 3,072 x 66 lands in the same range.
    QTable table(3072, 66);
    EXPECT_EQ(table.memoryBytes(), 3072u * 66u * sizeof(float));
    const double mb =
        static_cast<double>(table.memoryBytes()) / (1024.0 * 1024.0);
    EXPECT_GT(mb, 0.3);
    EXPECT_LT(mb, 1.0);
}

TEST(QTable, SaveLoadRoundTrip)
{
    QTable table(6, 4);
    Rng rng(9);
    table.randomize(rng, -2.0, 2.0);
    std::stringstream stream;
    table.save(stream);
    const QTable loaded = QTable::load(stream);
    ASSERT_EQ(loaded.numStates(), 6);
    ASSERT_EQ(loaded.numActions(), 4);
    for (int s = 0; s < 6; ++s) {
        for (int a = 0; a < 4; ++a) {
            EXPECT_FLOAT_EQ(loaded.at(s, a), table.at(s, a));
        }
    }
}

TEST(QTable, SaveIsLocaleIndependent)
{
    // Q-table serialization feeds checkpoint bodies whose CRC is taken
    // over the exact bytes: a comma-decimal global locale must not
    // change them (save/load imbue the classic locale).
    QTable table(4, 3);
    Rng rng(11);
    table.randomize(rng, -2.0, 2.0);
    std::stringstream classicStream;
    table.save(classicStream);

    struct CommaDecimalPoint : std::numpunct<char> {
        char do_decimal_point() const override { return ','; }
    };
    const std::locale previous = std::locale::global(
        std::locale(std::locale::classic(), new CommaDecimalPoint));
    std::stringstream commaStream;
    table.save(commaStream);
    EXPECT_EQ(commaStream.str(), classicStream.str());
    const QTable loaded = QTable::load(commaStream);
    std::locale::global(previous);

    for (int s = 0; s < 4; ++s) {
        for (int a = 0; a < 3; ++a) {
            EXPECT_FLOAT_EQ(loaded.at(s, a), table.at(s, a));
        }
    }
}

TEST(HalfFloat, ExactValuesRoundTrip)
{
    for (float v : {0.0f, 1.0f, -1.0f, 0.5f, -2.75f, 1024.0f, -15.0f,
                    0.000061035156f /* smallest normal half */}) {
        EXPECT_FLOAT_EQ(halfToFloat(floatToHalf(v)), v) << v;
    }
}

TEST(HalfFloat, RelativeErrorWithinHalfPrecision)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const float v =
            static_cast<float>(rng.uniform(-5000.0, 5000.0));
        const float back = halfToFloat(floatToHalf(v));
        if (std::fabs(v) > 1e-3f) {
            EXPECT_NEAR(back, v, std::fabs(v) * 1e-3f + 1e-6f);
        }
    }
}

TEST(HalfFloat, OverflowSaturatesToInfinity)
{
    EXPECT_TRUE(std::isinf(halfToFloat(floatToHalf(1e10f))));
    EXPECT_TRUE(std::isinf(halfToFloat(floatToHalf(-1e10f))));
    EXPECT_LT(halfToFloat(floatToHalf(-1e10f)), 0.0f);
}

TEST(HalfFloat, SubnormalsSurvive)
{
    const float tiny = 3.0e-6f; // subnormal in half precision
    const float back = halfToFloat(floatToHalf(tiny));
    EXPECT_GT(back, 0.0f);
    EXPECT_NEAR(back, tiny, tiny * 0.05f);
}

TEST(PackedQTable, FootprintMatchesThePaper)
{
    // Section VI-C: "the memory requirement of AutoScale is 0.4 MB".
    QTable table(3072, 66);
    PackedQTable packed(table);
    const double mb = static_cast<double>(packed.memoryBytes())
        / (1024.0 * 1024.0);
    EXPECT_NEAR(mb, 0.39, 0.02);
    EXPECT_EQ(packed.memoryBytes() * 2, table.memoryBytes());
}

TEST(PackedQTable, PreservesGreedyDecisionsOnRealisticValues)
{
    // Q-values at mJ scale: gaps above the ~0.1% half quantization are
    // never flipped by packing.
    QTable table(64, 66);
    Rng rng(11);
    table.randomize(rng, -500.0, 0.0);
    PackedQTable packed(table);
    int agreement = 0;
    for (int s = 0; s < 64; ++s) {
        EXPECT_NEAR(packed.at(s, 3), table.at(s, 3),
                    std::fabs(table.at(s, 3)) * 1e-3 + 1e-3);
        if (packed.bestAction(s) == table.bestAction(s)) {
            ++agreement;
        }
    }
    EXPECT_GE(agreement, 62); // near-exact; random ties may flip
}

TEST(PackedQTable, UnpackRoundTrip)
{
    QTable table(8, 5);
    Rng rng(13);
    table.randomize(rng, -100.0, 0.0);
    const QTable unpacked = PackedQTable(table).unpack();
    for (int s = 0; s < 8; ++s) {
        for (int a = 0; a < 5; ++a) {
            EXPECT_NEAR(unpacked.at(s, a), table.at(s, a),
                        std::fabs(table.at(s, a)) * 1e-3 + 1e-3);
        }
    }
}

TEST(QTableDeath, AbsurdHeaderIsRejectedBeforeAllocating)
{
    // A corrupt or malicious header must not size a huge allocation.
    std::stringstream huge("999999999 999999999\n");
    EXPECT_EXIT({ QTable::load(huge); }, ::testing::ExitedWithCode(1),
                "absurd header");
    std::stringstream negative("-3 4\n");
    EXPECT_EXIT({ QTable::load(negative); },
                ::testing::ExitedWithCode(1), "malformed header");
}

TEST(QTableDeath, NonFiniteValuesAreRejected)
{
    std::stringstream nan_stream("2 2\n0.5 nan\n1.0 2.0\n");
    EXPECT_EXIT({ QTable::load(nan_stream); },
                ::testing::ExitedWithCode(1),
                "non-finite value at state 0, action 1");
    std::stringstream inf_stream("2 2\n0.5 1.5\ninf 2.0\n");
    EXPECT_EXIT({ QTable::load(inf_stream); },
                ::testing::ExitedWithCode(1),
                "non-finite value at state 1, action 0");
}

TEST(QTable, DimensionsReported)
{
    QTable table(3072, 66);
    EXPECT_EQ(table.numStates(), 3072);
    EXPECT_EQ(table.numActions(), 66);
}

} // namespace
} // namespace autoscale::core
