/**
 * @file
 * Tests for the Bayesian-optimization approach (Fig. 7's BO): the
 * Gaussian-process surrogate, expected improvement, and the policy.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/bayesopt.h"
#include "baselines/oracle.h"
#include "dnn/model_zoo.h"
#include "platform/device_zoo.h"
#include "util/rng.h"

namespace autoscale::baselines {
namespace {

TEST(GaussianProcess, InterpolatesTrainingPoints)
{
    GaussianProcess gp(2.0, 1e-6);
    const std::vector<Vector> x{{0.0}, {0.5}, {1.0}};
    const Vector y{1.0, -1.0, 2.0};
    gp.fit(x, y);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(gp.mean(x[i]), y[i], 1e-3);
        EXPECT_LT(gp.variance(x[i]), 1e-3);
    }
}

TEST(GaussianProcess, VarianceGrowsAwayFromData)
{
    GaussianProcess gp(2.0, 1e-4);
    gp.fit({{0.0}, {0.2}}, {0.0, 0.1});
    EXPECT_LT(gp.variance({0.1}), gp.variance({3.0}));
    EXPECT_NEAR(gp.variance({10.0}), 1.0, 1e-6); // prior variance
}

TEST(GaussianProcess, MeanRevertsToPriorFarAway)
{
    GaussianProcess gp(2.0, 1e-4);
    gp.fit({{0.0}}, {5.0});
    EXPECT_NEAR(gp.mean({10.0}), 0.0, 1e-6);
}

TEST(ExpectedImprovement, ZeroWhenNoImprovementPossible)
{
    // Deterministic prediction worse than the incumbent: EI == 0.
    EXPECT_DOUBLE_EQ(expectedImprovement(2.0, 0.0, 1.0), 0.0);
    // Deterministic improvement: EI equals the gap.
    EXPECT_DOUBLE_EQ(expectedImprovement(0.5, 0.0, 1.0), 0.5);
}

TEST(ExpectedImprovement, UncertaintyCreatesValue)
{
    // Same mean as the incumbent: only uncertainty drives EI.
    const double ei = expectedImprovement(1.0, 0.5, 1.0);
    EXPECT_GT(ei, 0.0);
    // EI(sigma) = sigma * phi(0) when mu == best.
    EXPECT_NEAR(ei, 0.5 * 0.3989422804014327, 1e-9);
    // More uncertainty, more EI.
    EXPECT_GT(expectedImprovement(1.0, 1.0, 1.0), ei);
}

TEST(BayesOpt, FindsNearOptimalActionInTrainingEnvironment)
{
    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    BayesOptPolicy policy(sim, 30);
    const dnn::Network &net = dnn::findModel("Inception v1");
    Rng rng(3);
    policy.train({&net}, rng);

    const sim::InferenceRequest request = sim::makeRequest(net);
    const Decision decision =
        policy.decide(request, env::EnvState{}, rng);
    ASSERT_TRUE(sim.isFeasible(net, decision.target));

    OptOracle oracle(sim);
    const sim::Outcome opt =
        oracle.optimalOutcome(request, env::EnvState{});
    const sim::Outcome chosen =
        sim.expected(net, decision.target, env::EnvState{});
    // Within 2x of the optimum with a modest evaluation budget.
    EXPECT_LT(chosen.energyJ, 2.0 * opt.energyJ);
}

TEST(BayesOpt, SurrogateIgnoresRuntimeVariance)
{
    // The BO surrogates model action knobs only; their predictions (and
    // hence decisions) cannot react to interference — the paper's
    // explanation for BO's 15.7% MAPE under variance.
    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    BayesOptPolicy policy(sim, 20);
    const dnn::Network &net = dnn::findModel("MobileNet v2");
    Rng rng(4);
    policy.train({&net}, rng);

    const sim::InferenceRequest request = sim::makeRequest(net);
    env::EnvState hog;
    hog.coCpuUtil = 0.9;
    hog.coMemUtil = 0.8;
    const Decision clean =
        policy.decide(request, env::EnvState{}, rng);
    const Decision contended = policy.decide(request, hog, rng);
    EXPECT_TRUE(clean.target == contended.target);
}

TEST(BayesOpt, PredictionsPositiveAndFinite)
{
    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    BayesOptPolicy policy(sim, 15);
    const dnn::Network &net = dnn::findModel("MobileNet v1");
    Rng rng(5);
    policy.train({&net}, rng);
    sim::ExecutionTarget cpu{sim::TargetPlace::Local,
                             platform::ProcKind::MobileCpu,
                             sim.localDevice().cpu().maxVfIndex(),
                             dnn::Precision::FP32};
    EXPECT_GT(policy.predictEnergyJ(net, cpu), 0.0);
    EXPECT_GT(policy.predictLatencyMs(net, cpu), 0.0);
    EXPECT_TRUE(std::isfinite(policy.predictEnergyJ(net, cpu)));
}

} // namespace
} // namespace autoscale::baselines
