/**
 * @file
 * Tests for the Opt oracle: exhaustive optimality, constraint handling,
 * and sensitivity to the runtime environment (the Fig. 4/5/6 target
 * shifts at the unit level).
 */

#include <gtest/gtest.h>

#include <limits>

#include "baselines/oracle.h"
#include "dnn/model_zoo.h"
#include "platform/device_zoo.h"

namespace autoscale::baselines {
namespace {

sim::InferenceSimulator
mi8Sim()
{
    return sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
}

TEST(Oracle, IsExhaustivelyOptimal)
{
    // Brute-force cross-check: no feasible QoS+accuracy-meeting action
    // may have lower expected energy than the oracle's choice.
    const sim::InferenceSimulator sim = mi8Sim();
    OptOracle oracle(sim);
    const env::EnvState env;
    for (const auto &net : dnn::modelZoo()) {
        const sim::InferenceRequest request = sim::makeRequest(net);
        const sim::Outcome best = oracle.optimalOutcome(request, env);
        ASSERT_TRUE(best.feasible) << net.name();
        for (const auto &action : oracle.actions()) {
            const sim::Outcome o = sim.expected(net, action, env);
            if (!o.feasible || o.accuracyPct < request.accuracyTargetPct
                || o.latencyMs >= request.qosMs) {
                continue;
            }
            EXPECT_GE(o.estimatedEnergyJ + 1e-12,
                      best.estimatedEnergyJ)
                << net.name() << " " << action.label();
        }
    }
}

TEST(Oracle, MeetsConstraintsWhenPossible)
{
    const sim::InferenceSimulator sim = mi8Sim();
    OptOracle oracle(sim);
    const env::EnvState env;
    for (const auto &net : dnn::modelZoo()) {
        const sim::InferenceRequest request = sim::makeRequest(net);
        const sim::Outcome best = oracle.optimalOutcome(request, env);
        EXPECT_LT(best.latencyMs, request.qosMs) << net.name();
        EXPECT_GE(best.accuracyPct, request.accuracyTargetPct)
            << net.name();
    }
}

TEST(Oracle, HeavyNetworksGoToTheCloud)
{
    const sim::InferenceSimulator sim = mi8Sim();
    OptOracle oracle(sim);
    const dnn::Network bert = dnn::makeMobileBert();
    const sim::ExecutionTarget target =
        oracle.optimalTarget(sim::makeRequest(bert), env::EnvState{});
    EXPECT_EQ(target.place, sim::TargetPlace::Cloud);
}

TEST(Oracle, LightNetworksStayAtTheEdge)
{
    const sim::InferenceSimulator sim = mi8Sim();
    OptOracle oracle(sim);
    for (const char *name : {"MobileNet v1", "MobileNet v2",
                             "MobileNet v3", "Inception v1"}) {
        const dnn::Network &net = dnn::findModel(name);
        const sim::ExecutionTarget target =
            oracle.optimalTarget(sim::makeRequest(net), env::EnvState{});
        EXPECT_EQ(target.place, sim::TargetPlace::Local) << name;
    }
}

TEST(Oracle, Fig4AccuracyTargetShiftsDecision)
{
    // At a 50% target, MobileNet v3's optimum is low-precision local
    // execution; at 65% the low-precision options fail and the optimum
    // shifts (Section III-A, Fig. 4).
    const sim::InferenceSimulator sim = mi8Sim();
    OptOracle oracle(sim);
    const dnn::Network &net = dnn::findModel("MobileNet v3");
    const env::EnvState env;

    sim::InferenceRequest loose = sim::makeRequest(net, 50.0);
    const sim::ExecutionTarget relaxed = oracle.optimalTarget(loose, env);
    EXPECT_EQ(relaxed.precision, dnn::Precision::INT8);
    EXPECT_EQ(relaxed.place, sim::TargetPlace::Local);

    sim::InferenceRequest strict = sim::makeRequest(net, 65.0);
    const sim::ExecutionTarget tight = oracle.optimalTarget(strict, env);
    EXPECT_NE(tight.precision, dnn::Precision::INT8);
    const sim::Outcome o = sim.expected(net, tight, env);
    EXPECT_GE(o.accuracyPct, 65.0);
}

TEST(Oracle, Fig5MemoryHogPushesOffDevice)
{
    const sim::InferenceSimulator sim = mi8Sim();
    OptOracle oracle(sim);
    const dnn::Network &net = dnn::findModel("MobileNet v3");
    const sim::InferenceRequest request = sim::makeRequest(net);

    const sim::ExecutionTarget clean =
        oracle.optimalTarget(request, env::EnvState{});
    EXPECT_EQ(clean.place, sim::TargetPlace::Local);

    env::EnvState hog;
    hog.coCpuUtil = 0.2;
    hog.coMemUtil = 0.8;
    const sim::ExecutionTarget contended =
        oracle.optimalTarget(request, hog);
    EXPECT_NE(contended.place, sim::TargetPlace::Local);
}

TEST(Oracle, Fig5CpuHogShiftsCpuToCoProcessor)
{
    const sim::InferenceSimulator sim = mi8Sim();
    OptOracle oracle(sim);
    const dnn::Network &net = dnn::findModel("MobileNet v3");
    const sim::InferenceRequest request = sim::makeRequest(net);

    const sim::ExecutionTarget clean =
        oracle.optimalTarget(request, env::EnvState{});
    EXPECT_EQ(clean.proc, platform::ProcKind::MobileCpu);

    env::EnvState hog;
    hog.coCpuUtil = 0.85;
    hog.coMemUtil = 0.1;
    hog.thermalFactor = 0.85;
    const sim::ExecutionTarget contended =
        oracle.optimalTarget(request, hog);
    EXPECT_NE(contended.proc, platform::ProcKind::MobileCpu);
}

TEST(Oracle, Fig6WeakWifiMovesCloudWorkCloser)
{
    // ResNet 50's clean optimum is the cloud; with weak Wi-Fi it moves
    // to the connected edge, and with both links weak it stays local.
    const sim::InferenceSimulator sim = mi8Sim();
    OptOracle oracle(sim);
    const dnn::Network &net = dnn::findModel("ResNet 50");
    const sim::InferenceRequest request = sim::makeRequest(net);

    EXPECT_EQ(oracle.optimalTarget(request, env::EnvState{}).place,
              sim::TargetPlace::Cloud);

    env::EnvState weak_wlan;
    weak_wlan.rssiWlanDbm = -85.0;
    EXPECT_EQ(oracle.optimalTarget(request, weak_wlan).place,
              sim::TargetPlace::ConnectedEdge);

    env::EnvState both_weak;
    both_weak.rssiWlanDbm = -85.0;
    both_weak.rssiP2pDbm = -85.0;
    EXPECT_EQ(oracle.optimalTarget(request, both_weak).place,
              sim::TargetPlace::Local);
}

TEST(Oracle, ImpossibleConstraintsStillReturnBestEffort)
{
    const sim::InferenceSimulator sim = mi8Sim();
    OptOracle oracle(sim);
    const dnn::Network &net = dnn::findModel("Inception v3");
    sim::InferenceRequest request = sim::makeRequest(net);
    request.qosMs = 0.001; // unachievable
    const sim::ExecutionTarget target =
        oracle.optimalTarget(request, env::EnvState{});
    const sim::Outcome o = sim.expected(net, target, env::EnvState{});
    EXPECT_TRUE(o.feasible);
    // Accuracy constraint still honored even when QoS cannot be.
    EXPECT_GE(o.accuracyPct, request.accuracyTargetPct);
}

TEST(Oracle, DecideMatchesOptimalTarget)
{
    const sim::InferenceSimulator sim = mi8Sim();
    OptOracle oracle(sim);
    Rng rng(1);
    const dnn::Network &net = dnn::findModel("MobileNet v2");
    const sim::InferenceRequest request = sim::makeRequest(net);
    const env::EnvState env;
    const Decision decision = oracle.decide(request, env, rng);
    EXPECT_FALSE(decision.partitioned);
    EXPECT_TRUE(decision.target == oracle.optimalTarget(request, env));
}

} // namespace
} // namespace autoscale::baselines
