/**
 * @file
 * Tests for the wireless link model (net/link.h) and RSSI processes:
 * rate collapse at weak signal, signal-strength-dependent radio power
 * (Eq. 4), and transfer latency/energy accounting.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.h"
#include "net/link.h"
#include "platform/device_zoo.h"
#include "sim/simulator.h"
#include "net/rssi_process.h"
#include "util/rng.h"
#include "util/stats.h"

namespace autoscale::net {
namespace {

TEST(WirelessLink, RateIsMonotoneInRssi)
{
    const WirelessLink wlan = WirelessLink::defaultWlan();
    double previous = 0.0;
    for (double rssi = -95.0; rssi <= -40.0; rssi += 1.0) {
        const double rate = wlan.dataRateMbps(rssi);
        EXPECT_GE(rate, previous);
        previous = rate;
    }
}

TEST(WirelessLink, StrongSignalSaturates)
{
    const WirelessLink wlan = WirelessLink::defaultWlan();
    EXPECT_GT(wlan.dataRateMbps(-50.0), 0.95 * wlan.maxRateMbps());
}

TEST(WirelessLink, WeakSignalCollapsesExponentially)
{
    // Below the -80 dBm weak threshold the rate should fall off hard:
    // the paper's "data transmission latency increases exponentially".
    const WirelessLink wlan = WirelessLink::defaultWlan();
    const double regular = wlan.dataRateMbps(-60.0);
    const double weak = wlan.dataRateMbps(kWeakRssiDbm - 5.0);
    EXPECT_LT(weak, 0.3 * regular);
    const double very_weak = wlan.dataRateMbps(-92.0);
    EXPECT_LT(very_weak, 0.1 * regular);
    EXPECT_GE(very_weak, 0.5); // MCS floor, never zero
}

TEST(WirelessLink, TxPowerRisesAtWeakSignal)
{
    const WirelessLink wlan = WirelessLink::defaultWlan();
    EXPECT_GT(wlan.txPowerW(-90.0), wlan.txPowerW(-80.0));
    EXPECT_GT(wlan.txPowerW(-80.0), wlan.txPowerW(-60.0));
    EXPECT_DOUBLE_EQ(wlan.txPowerW(-50.0), wlan.txPowerW(-60.0));
    EXPECT_GT(wlan.rxPowerW(-90.0), wlan.rxPowerW(-60.0));
}

TEST(WirelessLink, TransferLatencyMatchesRate)
{
    const WirelessLink wlan = WirelessLink::defaultWlan();
    const double rssi = -55.0;
    const std::uint64_t tx_bytes = 150 * 1024;
    const TransferResult result = wlan.transfer(tx_bytes, 4096, rssi);
    // txMs = bits / (Mbps * 1e3 bits per ms).
    const double expected_tx = static_cast<double>(tx_bytes) * 8.0
        / (wlan.dataRateMbps(rssi) * 1e3);
    EXPECT_NEAR(result.txMs, expected_tx, expected_tx * 1e-9);
    EXPECT_GT(result.txMs, result.rxMs);
    EXPECT_DOUBLE_EQ(result.fixedMs, wlan.fixedRttMs());
    EXPECT_NEAR(result.totalMs(),
                result.txMs + result.rxMs + result.fixedMs, 1e-12);
}

TEST(WirelessLink, TransferEnergyFollowsEq4)
{
    const WirelessLink wlan = WirelessLink::defaultWlan();
    const double rssi = -70.0;
    const TransferResult result = wlan.transfer(100'000, 10'000, rssi);
    const double expected = wlan.txPowerW(rssi) * result.txMs * 1e-3
        + wlan.rxPowerW(rssi) * result.rxMs * 1e-3;
    EXPECT_NEAR(result.energyJ, expected, 1e-12);
}

TEST(WirelessLink, WeakSignalCostsMoreTimeAndEnergy)
{
    const WirelessLink wlan = WirelessLink::defaultWlan();
    const TransferResult strong = wlan.transfer(150'000, 4'096, -55.0);
    const TransferResult weak = wlan.transfer(150'000, 4'096, -85.0);
    EXPECT_GT(weak.totalMs(), 2.0 * strong.totalMs());
    EXPECT_GT(weak.energyJ, 3.0 * strong.energyJ);
}

TEST(WirelessLink, P2pHasLowerProtocolOverheadThanWlan)
{
    EXPECT_LT(WirelessLink::defaultP2p().fixedRttMs(),
              WirelessLink::defaultWlan().fixedRttMs());
}

TEST(WirelessLink, CellularPresetsAreOrderedSensibly)
{
    const WirelessLink wifi = WirelessLink::defaultWlan();
    const WirelessLink lte = WirelessLink::lte();
    const WirelessLink fiveg = WirelessLink::fiveG();
    EXPECT_LT(lte.maxRateMbps(), wifi.maxRateMbps());
    EXPECT_GT(fiveg.maxRateMbps(), wifi.maxRateMbps());
    EXPECT_GT(lte.fixedRttMs(), wifi.fixedRttMs());
    EXPECT_LT(fiveg.fixedRttMs(), wifi.fixedRttMs());
    // A 150 KB image upload: 5G < Wi-Fi < LTE end-to-end.
    const double wifi_ms = wifi.transfer(150'000, 4'096, -55.0).totalMs();
    const double lte_ms = lte.transfer(150'000, 4'096, -55.0).totalMs();
    const double fiveg_ms =
        fiveg.transfer(150'000, 4'096, -55.0).totalMs();
    EXPECT_LT(fiveg_ms, wifi_ms);
    EXPECT_LT(wifi_ms, lte_ms);
}

TEST(WirelessLink, CellularCloudPathStillSchedulable)
{
    // The simulator accepts any WLAN-kind link: an LTE-backed system
    // shifts the edge/cloud crossover but stays consistent.
    const sim::InferenceSimulator wifi_sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    const sim::InferenceSimulator lte_sim(
        platform::makeMi8Pro(), platform::makeGalaxyTabS6(),
        platform::makeCloudServer(), WirelessLink::lte(),
        WirelessLink::defaultP2p());
    const dnn::Network &net = dnn::findModel("MobileBERT");
    const sim::ExecutionTarget cloud{
        sim::TargetPlace::Cloud, platform::ProcKind::ServerGpu,
        lte_sim.cloudDevice().gpu().maxVfIndex(), dnn::Precision::FP32};
    const env::EnvState env;
    const double wifi_ms =
        wifi_sim.expected(net, cloud, env).latencyMs;
    const double lte_ms = lte_sim.expected(net, cloud, env).latencyMs;
    EXPECT_GT(lte_ms, wifi_ms);
    // Even over LTE, MobileBERT's 100 ms translation QoS is met.
    EXPECT_LT(lte_ms, 100.0);
}

TEST(WirelessLink, KindNames)
{
    EXPECT_STREQ(linkKindName(LinkKind::Wlan), "Wi-Fi");
    EXPECT_STREQ(linkKindName(LinkKind::PeerToPeer), "Wi-Fi Direct");
}

TEST(RssiProcess, ConstantReturnsFixedValue)
{
    ConstantRssi rssi(-77.5);
    Rng rng(1);
    for (int i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(rssi.sample(rng), -77.5);
    }
}

TEST(RssiProcess, GaussianMomentsAndClamp)
{
    // Section V-B: signal strength variance is modeled by a Gaussian.
    GaussianRssi rssi(-70.0, 8.0, -95.0, -40.0);
    Rng rng(3);
    OnlineStats stats;
    for (int i = 0; i < 50000; ++i) {
        const double v = rssi.sample(rng);
        EXPECT_GE(v, -95.0);
        EXPECT_LE(v, -40.0);
        stats.add(v);
    }
    EXPECT_NEAR(stats.mean(), -70.0, 0.2);
    EXPECT_NEAR(stats.stddev(), 8.0, 0.3);
}

TEST(RssiProcess, GaussianProducesBothWeakAndRegularStates)
{
    // D3 must exercise both S_RSSI_W bins.
    GaussianRssi rssi(-78.0, 8.0);
    Rng rng(5);
    int weak = 0;
    int regular = 0;
    for (int i = 0; i < 1000; ++i) {
        if (rssi.sample(rng) <= kWeakRssiDbm) {
            ++weak;
        } else {
            ++regular;
        }
    }
    EXPECT_GT(weak, 100);
    EXPECT_GT(regular, 100);
}

} // namespace
} // namespace autoscale::net
