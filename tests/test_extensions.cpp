/**
 * @file
 * Tests for the Section V-C extensions: mobile NPU and cloud TPU
 * actions ("depending on the configurations of edge-cloud systems,
 * additional actions, such as mobile NPU or cloud TPU, could be
 * further considered").
 */

#include <gtest/gtest.h>

#include "baselines/fixed.h"
#include "baselines/oracle.h"
#include "core/action_space.h"
#include "dnn/model_zoo.h"
#include "env/interference.h"
#include "net/link.h"
#include "platform/device_zoo.h"
#include "sim/simulator.h"

namespace autoscale {
namespace {

sim::InferenceSimulator
npuTpuSim()
{
    return sim::InferenceSimulator(
        platform::makeMi8ProWithNpu(), platform::makeGalaxyTabS6(),
        platform::makeCloudServerWithTpu(), net::WirelessLink::defaultWlan(),
        net::WirelessLink::defaultP2p());
}

TEST(Accelerators, DeviceSlotsAndKinds)
{
    const platform::Device phone = platform::makeMi8ProWithNpu();
    ASSERT_TRUE(phone.hasAccelerator());
    EXPECT_EQ(phone.accelerator().kind(), platform::ProcKind::MobileNpu);
    EXPECT_EQ(phone.processors().size(), 4u);
    EXPECT_EQ(phone.processor(platform::ProcKind::MobileNpu),
              &phone.accelerator());

    const platform::Device server = platform::makeCloudServerWithTpu();
    ASSERT_TRUE(server.hasAccelerator());
    EXPECT_EQ(server.accelerator().kind(), platform::ProcKind::ServerTpu);
}

TEST(Accelerators, BaseDevicesHaveNone)
{
    EXPECT_FALSE(platform::makeMi8Pro().hasAccelerator());
    EXPECT_FALSE(platform::makeCloudServer().hasAccelerator());
}

TEST(Accelerators, PrecisionRules)
{
    const platform::Device phone = platform::makeMi8ProWithNpu();
    EXPECT_TRUE(phone.accelerator().supportsPrecision(
        dnn::Precision::INT8));
    EXPECT_FALSE(phone.accelerator().supportsPrecision(
        dnn::Precision::FP32));

    const platform::Device server = platform::makeCloudServerWithTpu();
    EXPECT_TRUE(server.accelerator().supportsPrecision(
        dnn::Precision::FP32));
    EXPECT_FALSE(server.accelerator().supportsPrecision(
        dnn::Precision::INT8));
}

TEST(Accelerators, KindNames)
{
    EXPECT_STREQ(platform::procKindName(platform::ProcKind::MobileNpu),
                 "NPU");
    EXPECT_STREQ(platform::procKindName(platform::ProcKind::ServerTpu),
                 "TPU");
}

TEST(Accelerators, ActionSpaceGrowsByTwo)
{
    const sim::InferenceSimulator base =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    const sim::InferenceSimulator extended = npuTpuSim();
    // +1 local NPU, +1 cloud TPU on top of the 66 base actions.
    EXPECT_EQ(core::buildActionSpace(base).size(), 66u);
    EXPECT_EQ(core::buildActionSpace(extended).size(), 68u);
}

TEST(Accelerators, NpuFeasibilityFollowsCoProcessorRules)
{
    const sim::InferenceSimulator sim = npuTpuSim();
    sim::ExecutionTarget npu{sim::TargetPlace::Local,
                             platform::ProcKind::MobileNpu, 0,
                             dnn::Precision::INT8};
    EXPECT_TRUE(sim.isFeasible(dnn::findModel("MobileNet v1"), npu));
    // Middleware limitation applies to the NPU like any co-processor.
    EXPECT_FALSE(sim.isFeasible(dnn::findModel("MobileBERT"), npu));
}

TEST(Accelerators, NpuBeatsDspOnConvNetworks)
{
    const sim::InferenceSimulator sim = npuTpuSim();
    const dnn::Network &net = dnn::findModel("Inception v1");
    const env::EnvState clean;
    const sim::Outcome npu = sim.expected(
        net,
        sim::ExecutionTarget{sim::TargetPlace::Local,
                             platform::ProcKind::MobileNpu, 0,
                             dnn::Precision::INT8},
        clean);
    const sim::Outcome dsp = sim.expected(
        net,
        sim::ExecutionTarget{sim::TargetPlace::Local,
                             platform::ProcKind::MobileDsp, 0,
                             dnn::Precision::INT8},
        clean);
    ASSERT_TRUE(npu.feasible);
    EXPECT_LT(npu.latencyMs, dsp.latencyMs);
}

TEST(Accelerators, TpuShortensRemoteCompute)
{
    const sim::InferenceSimulator sim = npuTpuSim();
    const dnn::Network &net = dnn::findModel("Inception v3");
    const env::EnvState clean;
    const sim::Outcome tpu = sim.expected(
        net,
        sim::ExecutionTarget{sim::TargetPlace::Cloud,
                             platform::ProcKind::ServerTpu, 0,
                             dnn::Precision::FP32},
        clean);
    const sim::Outcome gpu = sim.expected(
        net,
        sim::ExecutionTarget{sim::TargetPlace::Cloud,
                             platform::ProcKind::ServerGpu,
                             sim.cloudDevice().gpu().maxVfIndex(),
                             dnn::Precision::FP32},
        clean);
    ASSERT_TRUE(tpu.feasible);
    EXPECT_LT(tpu.computeMs, gpu.computeMs);
    EXPECT_LE(tpu.latencyMs, gpu.latencyMs);
}

TEST(Accelerators, OracleExploitsTheNpu)
{
    const sim::InferenceSimulator base =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    const sim::InferenceSimulator extended = npuTpuSim();
    baselines::OptOracle base_oracle(base);
    baselines::OptOracle ext_oracle(extended);
    const env::EnvState clean;
    // With the NPU available, the oracle never does worse and improves
    // somewhere across the zoo.
    int improved = 0;
    for (const auto &net : dnn::modelZoo()) {
        const sim::InferenceRequest request = sim::makeRequest(net);
        const double before =
            base_oracle.optimalOutcome(request, clean).energyJ;
        const double after =
            ext_oracle.optimalOutcome(request, clean).energyJ;
        EXPECT_LE(after, before * 1.0001) << net.name();
        if (after < before * 0.98) {
            ++improved;
        }
    }
    EXPECT_GT(improved, 0);
}

TEST(Accelerators, EdgeBestConsidersTheNpu)
{
    const sim::InferenceSimulator sim = npuTpuSim();
    auto policy = baselines::makeEdgeBestPolicy(sim);
    Rng rng(1);
    const dnn::Network &net = dnn::findModel("Inception v1");
    const baselines::Decision decision =
        policy->decide(sim::makeRequest(net), env::EnvState{}, rng);
    EXPECT_EQ(decision.target.proc, platform::ProcKind::MobileNpu);
}

TEST(Accelerators, CategoriesNameTheAccelerators)
{
    sim::ExecutionTarget npu{sim::TargetPlace::Local,
                             platform::ProcKind::MobileNpu, 0,
                             dnn::Precision::INT8};
    EXPECT_EQ(npu.category(), "Edge (NPU)");
    sim::ExecutionTarget tpu{sim::TargetPlace::Cloud,
                             platform::ProcKind::ServerTpu, 0,
                             dnn::Precision::FP32};
    EXPECT_EQ(tpu.category(), "Cloud");
}

TEST(Accelerators, InterferenceDeratesNpuLikeDsp)
{
    env::EnvState hog;
    hog.coMemUtil = 0.8;
    const auto npu = env::derateFor(platform::ProcKind::MobileNpu, hog);
    const auto dsp = env::derateFor(platform::ProcKind::MobileDsp, hog);
    EXPECT_DOUBLE_EQ(npu.freqFactor, dsp.freqFactor);
    EXPECT_DOUBLE_EQ(npu.bandwidthFactor, dsp.bandwidthFactor);
    const auto tpu = env::derateFor(platform::ProcKind::ServerTpu, hog);
    EXPECT_DOUBLE_EQ(tpu.freqFactor, 1.0);
}

} // namespace
} // namespace autoscale
