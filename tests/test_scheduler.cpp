/**
 * @file
 * Tests for the AutoScaleScheduler facade: the choose/feedback protocol,
 * online learning behaviour (avoiding infeasible and catastrophic
 * actions), and learning transfer through the public API.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/scheduler.h"
#include "core/transfer.h"
#include "dnn/model_zoo.h"
#include "env/scenario.h"
#include "platform/device_zoo.h"
#include "sim/simulator.h"

namespace autoscale::core {
namespace {

sim::InferenceSimulator
mi8Sim()
{
    return sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
}

TEST(Scheduler, ActionSpaceMatchesDevice)
{
    const sim::InferenceSimulator sim = mi8Sim();
    AutoScaleScheduler scheduler(sim, SchedulerConfig{}, 1);
    EXPECT_EQ(scheduler.actions().size(), 66u);
}

TEST(Scheduler, ChooseReturnsValidAction)
{
    const sim::InferenceSimulator sim = mi8Sim();
    AutoScaleScheduler scheduler(sim, SchedulerConfig{}, 2);
    const dnn::Network net = dnn::makeMobileNetV1();
    const sim::InferenceRequest request = sim::makeRequest(net);
    const env::EnvState env;
    const sim::ExecutionTarget &target = scheduler.choose(request, env);
    // The returned reference is into the scheduler's own action list.
    bool found = false;
    for (const auto &action : scheduler.actions()) {
        if (action == target) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
    scheduler.feedback(sim.expected(net, target, env));
    scheduler.finishEpisode();
}

TEST(Scheduler, LearnsToAvoidInfeasibleActionsForBert)
{
    // MobileBERT cannot run on GPU/DSP: after training, the greedy
    // choice must be a feasible target.
    const sim::InferenceSimulator sim = mi8Sim();
    AutoScaleScheduler scheduler(sim, SchedulerConfig{}, 3);
    const dnn::Network bert = dnn::makeMobileBert();
    const sim::InferenceRequest request = sim::makeRequest(bert);
    const env::EnvState env;
    Rng rng(4);
    for (int i = 0; i < 300; ++i) {
        const sim::ExecutionTarget &target =
            scheduler.choose(request, env);
        scheduler.feedback(sim.run(bert, target, env, rng));
    }
    scheduler.finishEpisode();
    scheduler.setExploration(false);
    const sim::ExecutionTarget &greedy = scheduler.choose(request, env);
    EXPECT_TRUE(sim.isFeasible(bert, greedy)) << greedy.label();
    scheduler.feedback(sim.run(bert, greedy, env, rng));
    scheduler.finishEpisode();
}

TEST(Scheduler, TrainedChoiceBeatsCpuBaseline)
{
    const sim::InferenceSimulator sim = mi8Sim();
    AutoScaleScheduler scheduler(sim, SchedulerConfig{}, 5);
    const dnn::Network net = dnn::makeInceptionV1();
    const sim::InferenceRequest request = sim::makeRequest(net);
    const env::EnvState env;
    Rng rng(6);
    for (int i = 0; i < 400; ++i) {
        const sim::ExecutionTarget &target =
            scheduler.choose(request, env);
        scheduler.feedback(sim.run(net, target, env, rng));
    }
    scheduler.finishEpisode();
    scheduler.setExploration(false);

    const sim::ExecutionTarget &greedy = scheduler.choose(request, env);
    const sim::Outcome chosen = sim.expected(net, greedy, env);
    scheduler.feedback(chosen);
    scheduler.finishEpisode();

    sim::ExecutionTarget cpu{sim::TargetPlace::Local,
                             platform::ProcKind::MobileCpu,
                             sim.localDevice().cpu().maxVfIndex(),
                             dnn::Precision::FP32};
    const sim::Outcome baseline = sim.expected(net, cpu, env);
    ASSERT_TRUE(chosen.feasible);
    EXPECT_LT(chosen.energyJ, baseline.energyJ);
    EXPECT_LT(chosen.latencyMs, request.qosMs);
}

TEST(Scheduler, LastRewardTracksFeedback)
{
    const sim::InferenceSimulator sim = mi8Sim();
    AutoScaleScheduler scheduler(sim, SchedulerConfig{}, 7);
    const dnn::Network net = dnn::makeMobileNetV2();
    const sim::InferenceRequest request = sim::makeRequest(net);
    const env::EnvState env;
    const sim::ExecutionTarget &target = scheduler.choose(request, env);
    const sim::Outcome outcome = sim.expected(net, target, env);
    scheduler.feedback(outcome);
    EXPECT_NEAR(scheduler.lastReward(),
                computeReward(outcome, request), 1e-9);
    scheduler.finishEpisode();
}

TEST(Scheduler, TransferSeedsTheDestinationTable)
{
    const sim::InferenceSimulator src_sim = mi8Sim();
    const sim::InferenceSimulator dst_sim =
        sim::InferenceSimulator::makeDefault(platform::makeMotoXForce());

    AutoScaleScheduler src(src_sim, SchedulerConfig{}, 8);
    const dnn::Network net = dnn::makeMobileNetV1();
    const sim::InferenceRequest request = sim::makeRequest(net);
    const env::EnvState env;
    Rng rng(9);
    for (int i = 0; i < 200; ++i) {
        const sim::ExecutionTarget &target = src.choose(request, env);
        src.feedback(src_sim.run(net, target, env, rng));
    }
    src.finishEpisode();

    AutoScaleScheduler dst(dst_sim, SchedulerConfig{}, 10);
    dst.transferFrom(src);

    // Every destination action with a semantic match on the source
    // must carry the source's learned value for this state.
    const StateFeatures features = makeStateFeatures(net, env);
    const StateId state = dst.encoder().encode(features);
    const auto match = matchActions(src.actions(), src_sim,
                                    dst.actions(), dst_sim);
    int copied = 0;
    for (std::size_t a = 0; a < dst.actions().size(); ++a) {
        if (match[a] < 0) {
            continue;
        }
        EXPECT_FLOAT_EQ(dst.agent().table().at(state,
                                               static_cast<int>(a)),
                        src.agent().table().at(state, match[a]));
        ++copied;
    }
    // Moto's whole action space exists on the Mi8Pro, so everything
    // must have been seeded.
    EXPECT_EQ(copied, static_cast<int>(dst.actions().size()));
}

TEST(Scheduler, EncoderAblationReducesStateSpace)
{
    SchedulerConfig config;
    config.encoder.disableFeature(Feature::RssiP);
    const sim::InferenceSimulator sim = mi8Sim();
    AutoScaleScheduler scheduler(sim, config, 11);
    EXPECT_EQ(scheduler.agent().table().numStates(), 3072 / 2);
}

TEST(Scheduler, QTablePersistenceRoundTrip)
{
    const sim::InferenceSimulator sim = mi8Sim();
    AutoScaleScheduler trained(sim, SchedulerConfig{}, 20);
    const dnn::Network net = dnn::makeMobileNetV2();
    const sim::InferenceRequest request = sim::makeRequest(net);
    const env::EnvState env;
    Rng rng(21);
    for (int i = 0; i < 120; ++i) {
        const sim::ExecutionTarget &target = trained.choose(request, env);
        trained.feedback(sim.run(net, target, env, rng));
    }
    trained.finishEpisode();
    trained.setExploration(false);

    std::stringstream stream;
    trained.saveQTable(stream);

    AutoScaleScheduler restored(sim, SchedulerConfig{}, 99);
    restored.loadQTable(stream);
    restored.setExploration(false);

    // Same greedy decision for the same state.
    const sim::ExecutionTarget &a = trained.choose(request, env);
    trained.feedback(sim.expected(net, a, env));
    trained.finishEpisode();
    const sim::ExecutionTarget &b = restored.choose(request, env);
    restored.feedback(sim.expected(net, b, env));
    restored.finishEpisode();
    EXPECT_TRUE(a == b);
}

TEST(Scheduler, FingerprintsDifferAcrossDevices)
{
    const sim::InferenceSimulator mi8 = mi8Sim();
    const sim::InferenceSimulator moto =
        sim::InferenceSimulator::makeDefault(platform::makeMotoXForce());
    AutoScaleScheduler a(mi8, SchedulerConfig{}, 1);
    AutoScaleScheduler b(moto, SchedulerConfig{}, 1);
    EXPECT_NE(a.actionFingerprint(), b.actionFingerprint());
    EXPECT_EQ(a.actionFingerprint(),
              AutoScaleScheduler(mi8Sim(), SchedulerConfig{}, 2)
                  .actionFingerprint());
}

TEST(SchedulerDeath, LoadRejectsForeignTables)
{
    const sim::InferenceSimulator mi8 = mi8Sim();
    const sim::InferenceSimulator moto =
        sim::InferenceSimulator::makeDefault(platform::makeMotoXForce());
    AutoScaleScheduler source(mi8, SchedulerConfig{}, 1);
    std::stringstream stream;
    source.saveQTable(stream);
    EXPECT_EXIT(
        {
            AutoScaleScheduler destination(moto, SchedulerConfig{}, 2);
            destination.loadQTable(stream);
        },
        ::testing::ExitedWithCode(1), "fingerprint mismatch");
}

} // namespace
} // namespace autoscale::core
