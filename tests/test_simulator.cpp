/**
 * @file
 * Tests for the edge-cloud inference simulator: feasibility rules,
 * deterministic expected outcomes, measurement noise statistics (the
 * Renergy estimator's ~7.3% MAPE), environmental effects, and
 * partitioned execution.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dnn/model_zoo.h"
#include "platform/device_zoo.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace autoscale::sim {
namespace {

InferenceSimulator
mi8Sim()
{
    return InferenceSimulator::makeDefault(platform::makeMi8Pro());
}

ExecutionTarget
localTarget(const InferenceSimulator &sim, platform::ProcKind proc,
            dnn::Precision precision)
{
    const platform::Processor *p = sim.localDevice().processor(proc);
    return ExecutionTarget{TargetPlace::Local, proc,
                           p != nullptr ? p->maxVfIndex() : 0, precision};
}

ExecutionTarget
cloudGpuTarget(const InferenceSimulator &sim)
{
    return ExecutionTarget{TargetPlace::Cloud, platform::ProcKind::ServerGpu,
                           sim.cloudDevice().gpu().maxVfIndex(),
                           dnn::Precision::FP32};
}

TEST(Feasibility, LocalProcessorsAndPrecisions)
{
    const InferenceSimulator sim = mi8Sim();
    const dnn::Network net = dnn::makeInceptionV1();
    EXPECT_TRUE(sim.isFeasible(
        net, localTarget(sim, platform::ProcKind::MobileCpu,
                         dnn::Precision::FP32)));
    EXPECT_TRUE(sim.isFeasible(
        net, localTarget(sim, platform::ProcKind::MobileDsp,
                         dnn::Precision::INT8)));
    // FP16 on CPU unsupported.
    EXPECT_FALSE(sim.isFeasible(
        net, localTarget(sim, platform::ProcKind::MobileCpu,
                         dnn::Precision::FP16)));
    // DSP is INT8-only.
    EXPECT_FALSE(sim.isFeasible(
        net, localTarget(sim, platform::ProcKind::MobileDsp,
                         dnn::Precision::FP32)));
}

TEST(Feasibility, MissingProcessorRejected)
{
    const InferenceSimulator sim =
        InferenceSimulator::makeDefault(platform::makeGalaxyS10e());
    const dnn::Network net = dnn::makeInceptionV1();
    EXPECT_FALSE(sim.isFeasible(
        net, localTarget(sim, platform::ProcKind::MobileDsp,
                         dnn::Precision::INT8)));
}

TEST(Feasibility, MobileBertCannotUseCoProcessors)
{
    const InferenceSimulator sim = mi8Sim();
    const dnn::Network bert = dnn::makeMobileBert();
    EXPECT_FALSE(sim.isFeasible(
        bert, localTarget(sim, platform::ProcKind::MobileGpu,
                          dnn::Precision::FP16)));
    EXPECT_FALSE(sim.isFeasible(
        bert, localTarget(sim, platform::ProcKind::MobileDsp,
                          dnn::Precision::INT8)));
    EXPECT_TRUE(sim.isFeasible(
        bert, localTarget(sim, platform::ProcKind::MobileCpu,
                          dnn::Precision::FP32)));
    EXPECT_TRUE(sim.isFeasible(bert, cloudGpuTarget(sim)));
    // Connected-edge co-processors are equally off limits.
    ExecutionTarget conn_dsp{TargetPlace::ConnectedEdge,
                             platform::ProcKind::MobileDsp, 0,
                             dnn::Precision::INT8};
    EXPECT_FALSE(sim.isFeasible(bert, conn_dsp));
}

TEST(Feasibility, PlaceAndKindMustAgree)
{
    const InferenceSimulator sim = mi8Sim();
    const dnn::Network net = dnn::makeMobileNetV1();
    // Server processor named for a local place.
    ExecutionTarget bad{TargetPlace::Local, platform::ProcKind::ServerGpu,
                        0, dnn::Precision::FP32};
    EXPECT_FALSE(sim.isFeasible(net, bad));
    // Mobile processor named for the cloud place.
    ExecutionTarget bad2{TargetPlace::Cloud, platform::ProcKind::MobileCpu,
                         0, dnn::Precision::FP32};
    EXPECT_FALSE(sim.isFeasible(net, bad2));
    // Out-of-range V/F index.
    ExecutionTarget bad3 = localTarget(sim, platform::ProcKind::MobileCpu,
                                       dnn::Precision::FP32);
    bad3.vfIndex = 99;
    EXPECT_FALSE(sim.isFeasible(net, bad3));
}

TEST(Expected, IsDeterministic)
{
    const InferenceSimulator sim = mi8Sim();
    const dnn::Network net = dnn::makeResNet50();
    const env::EnvState env;
    const ExecutionTarget target =
        localTarget(sim, platform::ProcKind::MobileGpu,
                    dnn::Precision::FP16);
    const Outcome a = sim.expected(net, target, env);
    const Outcome b = sim.expected(net, target, env);
    EXPECT_DOUBLE_EQ(a.latencyMs, b.latencyMs);
    EXPECT_DOUBLE_EQ(a.energyJ, b.energyJ);
    EXPECT_DOUBLE_EQ(a.energyJ, a.estimatedEnergyJ);
}

TEST(Expected, InfeasibleOutcomeIsMarked)
{
    const InferenceSimulator sim = mi8Sim();
    const dnn::Network bert = dnn::makeMobileBert();
    const Outcome outcome = sim.expected(
        bert, localTarget(sim, platform::ProcKind::MobileDsp,
                          dnn::Precision::INT8),
        env::EnvState{});
    EXPECT_FALSE(outcome.feasible);
    EXPECT_DOUBLE_EQ(outcome.accuracyPct, 0.0);
}

TEST(Measurement, NoiseCentersOnExpectation)
{
    const InferenceSimulator sim = mi8Sim();
    const dnn::Network net = dnn::makeMobileNetV2();
    const env::EnvState env;
    const ExecutionTarget target =
        localTarget(sim, platform::ProcKind::MobileCpu,
                    dnn::Precision::FP32);
    const Outcome expected = sim.expected(net, target, env);

    Rng rng(99);
    OnlineStats latency;
    OnlineStats energy;
    for (int i = 0; i < 5000; ++i) {
        const Outcome o = sim.run(net, target, env, rng);
        latency.add(o.latencyMs);
        energy.add(o.energyJ);
    }
    EXPECT_NEAR(latency.mean(), expected.latencyMs,
                expected.latencyMs * 0.01);
    EXPECT_NEAR(energy.mean(), expected.energyJ, expected.energyJ * 0.02);
    EXPECT_GT(latency.stddev(), 0.0);
}

TEST(Measurement, EnergyEstimatorMapeNearPaperValue)
{
    // Section IV-A: the Renergy estimator has a 7.3% MAPE against the
    // measured energy.
    const InferenceSimulator sim = mi8Sim();
    const dnn::Network net = dnn::makeInceptionV1();
    const env::EnvState env;
    const ExecutionTarget target =
        localTarget(sim, platform::ProcKind::MobileDsp,
                    dnn::Precision::INT8);
    Rng rng(7);
    std::vector<double> estimated;
    std::vector<double> measured;
    for (int i = 0; i < 20000; ++i) {
        const Outcome o = sim.run(net, target, env, rng);
        estimated.push_back(o.estimatedEnergyJ);
        measured.push_back(o.energyJ);
    }
    EXPECT_NEAR(mape(estimated, measured), 7.3, 1.0);
}

TEST(LocalExecution, DvfsTradesLatencyForPower)
{
    const InferenceSimulator sim = mi8Sim();
    const dnn::Network net = dnn::makeInceptionV1();
    const env::EnvState env;
    ExecutionTarget low{TargetPlace::Local, platform::ProcKind::MobileCpu,
                        0, dnn::Precision::FP32};
    ExecutionTarget high{TargetPlace::Local, platform::ProcKind::MobileCpu,
                         sim.localDevice().cpu().maxVfIndex(),
                         dnn::Precision::FP32};
    const Outcome slow = sim.expected(net, low, env);
    const Outcome fast = sim.expected(net, high, env);
    EXPECT_GT(slow.latencyMs, fast.latencyMs);
    // Average power must be lower at the bottom step.
    EXPECT_LT(slow.energyJ / slow.latencyMs, fast.energyJ / fast.latencyMs);
}

TEST(LocalExecution, InterferenceSlowsLocalButNotCloud)
{
    const InferenceSimulator sim = mi8Sim();
    const dnn::Network net = dnn::makeMobileNetV3();
    env::EnvState clean;
    env::EnvState hog;
    hog.coCpuUtil = 0.85;
    hog.coMemUtil = 0.1;
    hog.thermalFactor = 0.85;

    const ExecutionTarget cpu =
        localTarget(sim, platform::ProcKind::MobileCpu,
                    dnn::Precision::FP32);
    EXPECT_GT(sim.expected(net, cpu, hog).latencyMs,
              1.5 * sim.expected(net, cpu, clean).latencyMs);

    const ExecutionTarget cloud = cloudGpuTarget(sim);
    EXPECT_NEAR(sim.expected(net, cloud, hog).latencyMs,
                sim.expected(net, cloud, clean).latencyMs, 1e-9);
}

TEST(RemoteExecution, WeakSignalHurtsTheRightLink)
{
    const InferenceSimulator sim = mi8Sim();
    const dnn::Network net = dnn::makeResNet50();
    env::EnvState weak_wlan;
    weak_wlan.rssiWlanDbm = -85.0;
    env::EnvState clean;

    const ExecutionTarget cloud = cloudGpuTarget(sim);
    EXPECT_GT(sim.expected(net, cloud, weak_wlan).latencyMs,
              1.5 * sim.expected(net, cloud, clean).latencyMs);
    EXPECT_GT(sim.expected(net, cloud, weak_wlan).energyJ,
              1.5 * sim.expected(net, cloud, clean).energyJ);

    // The P2P link is unaffected by WLAN weakness.
    ExecutionTarget conn{TargetPlace::ConnectedEdge,
                         platform::ProcKind::MobileDsp, 0,
                         dnn::Precision::INT8};
    EXPECT_NEAR(sim.expected(net, conn, weak_wlan).latencyMs,
                sim.expected(net, conn, clean).latencyMs, 1e-9);
}

TEST(RemoteExecution, TransferBreakdownIsConsistent)
{
    const InferenceSimulator sim = mi8Sim();
    const dnn::Network net = dnn::makeInceptionV3();
    const Outcome o =
        sim.expected(net, cloudGpuTarget(sim), env::EnvState{});
    EXPECT_GT(o.txMs, 0.0);
    EXPECT_GT(o.rxMs, 0.0);
    EXPECT_GT(o.computeMs, 0.0);
    EXPECT_GT(o.latencyMs, o.txMs + o.rxMs + o.computeMs);
    // Uplink (image) outweighs downlink (labels).
    EXPECT_GT(o.txMs, o.rxMs);
}

TEST(RemoteExecution, HeavyNetworksFavorCloud)
{
    // The Fig. 2 motivation: MobileBERT runs far more efficiently in
    // the cloud than on the mobile CPU.
    const InferenceSimulator sim = mi8Sim();
    const dnn::Network bert = dnn::makeMobileBert();
    const env::EnvState env;
    const Outcome cpu = sim.expected(
        bert,
        localTarget(sim, platform::ProcKind::MobileCpu,
                    dnn::Precision::FP32),
        env);
    const Outcome cloud = sim.expected(bert, cloudGpuTarget(sim), env);
    EXPECT_LT(cloud.latencyMs, 100.0); // meets the translation QoS
    EXPECT_GT(cpu.latencyMs, 100.0);   // CPU cannot
    EXPECT_GT(cpu.energyJ, 10.0 * cloud.energyJ);
}

TEST(LightNetworks, FavorLocalExecution)
{
    // Fig. 2: light NNs are more efficient at the edge on high-end
    // devices.
    const InferenceSimulator sim = mi8Sim();
    const dnn::Network net = dnn::makeMobileNetV1();
    const env::EnvState env;
    const Outcome dsp = sim.expected(
        net,
        localTarget(sim, platform::ProcKind::MobileDsp,
                    dnn::Precision::INT8),
        env);
    const Outcome cloud = sim.expected(net, cloudGpuTarget(sim), env);
    EXPECT_LT(dsp.energyJ, cloud.energyJ);
    EXPECT_LT(dsp.latencyMs, 50.0);
}

TEST(Partitioned, DegenerateSplitsMatchWholeModelPaths)
{
    const InferenceSimulator sim = mi8Sim();
    const dnn::Network net = dnn::makeMobileNetV2();
    const env::EnvState env;

    PartitionSpec all_local;
    all_local.splitLayer = net.layers().size();
    all_local.localProc = platform::ProcKind::MobileCpu;
    all_local.vfIndex = sim.localDevice().cpu().maxVfIndex();
    all_local.localPrecision = dnn::Precision::FP32;
    const Outcome local = sim.expectedPartitioned(net, all_local, env);
    const Outcome direct = sim.expected(
        net,
        localTarget(sim, platform::ProcKind::MobileCpu,
                    dnn::Precision::FP32),
        env);
    EXPECT_NEAR(local.latencyMs, direct.latencyMs, 1e-9);
    EXPECT_NEAR(local.energyJ, direct.energyJ, 1e-12);

    PartitionSpec all_remote;
    all_remote.splitLayer = 0;
    all_remote.remotePlace = TargetPlace::Cloud;
    const Outcome remote = sim.expectedPartitioned(net, all_remote, env);
    const Outcome cloud = sim.expected(net, cloudGpuTarget(sim), env);
    EXPECT_NEAR(remote.latencyMs, cloud.latencyMs, 1e-9);
}

TEST(Partitioned, MidSplitShipsIntermediateActivations)
{
    const InferenceSimulator sim = mi8Sim();
    const dnn::Network net = dnn::makeInceptionV1();
    const env::EnvState env;

    PartitionSpec spec;
    spec.splitLayer = net.layers().size() / 2;
    spec.localProc = platform::ProcKind::MobileCpu;
    spec.vfIndex = sim.localDevice().cpu().maxVfIndex();
    spec.remotePlace = TargetPlace::Cloud;
    const Outcome o = sim.expectedPartitioned(net, spec, env);
    ASSERT_TRUE(o.feasible);
    EXPECT_GT(o.txMs, 0.0);
    EXPECT_GT(o.computeMs, 0.0);
    EXPECT_GT(o.latencyMs, o.computeMs);
}

TEST(Partitioned, LateSplitsShipLessData)
{
    // Activations shrink with depth, so later split points transmit
    // less (the NeuroSurgeon insight).
    const InferenceSimulator sim = mi8Sim();
    const dnn::Network net = dnn::makeResNet50();
    const env::EnvState env;
    PartitionSpec early;
    early.splitLayer = 2;
    early.localProc = platform::ProcKind::MobileCpu;
    early.vfIndex = sim.localDevice().cpu().maxVfIndex();
    PartitionSpec late = early;
    late.splitLayer = net.layers().size() - 3;
    const Outcome o_early = sim.expectedPartitioned(net, early, env);
    const Outcome o_late = sim.expectedPartitioned(net, late, env);
    EXPECT_GT(o_early.txMs, o_late.txMs);
}

TEST(Partitioned, InfeasibleLocalCoProcessorForBert)
{
    const InferenceSimulator sim = mi8Sim();
    const dnn::Network bert = dnn::makeMobileBert();
    PartitionSpec spec;
    spec.splitLayer = 5;
    spec.localProc = platform::ProcKind::MobileDsp;
    spec.localPrecision = dnn::Precision::INT8;
    const Outcome o = sim.expectedPartitioned(bert, spec, env::EnvState{});
    EXPECT_FALSE(o.feasible);
}

TEST(Outcome, PpwIsInverseEnergy)
{
    Outcome o;
    o.energyJ = 0.05;
    EXPECT_DOUBLE_EQ(o.ppw(), 20.0);
    Outcome zero;
    EXPECT_DOUBLE_EQ(zero.ppw(), 0.0);
}

TEST(Simulator, DeviceAtMapsPlaces)
{
    const InferenceSimulator sim = mi8Sim();
    EXPECT_EQ(sim.deviceAt(TargetPlace::Local).name(), "Mi8Pro");
    EXPECT_EQ(sim.deviceAt(TargetPlace::ConnectedEdge).name(),
              "Galaxy Tab S6");
    EXPECT_EQ(sim.deviceAt(TargetPlace::Cloud).name(), "Cloud Server");
}

} // namespace
} // namespace autoscale::sim
