/**
 * @file
 * Tests for the Q-learning agent: the exact Algorithm 1 update rule,
 * epsilon-greedy selection statistics, convergence tracking, and a
 * bandit-style learning sanity check.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>

#include "core/agent.h"
#include "util/rng.h"

namespace autoscale::core {
namespace {

QLearningConfig
paperConfig()
{
    // Section V-C: epsilon 0.1, learning rate 0.9, discount 0.1.
    return QLearningConfig{};
}

TEST(QLearningConfig, DefaultsMatchPaper)
{
    const QLearningConfig config;
    EXPECT_DOUBLE_EQ(config.epsilon, 0.1);
    EXPECT_DOUBLE_EQ(config.learningRate, 0.9);
    EXPECT_DOUBLE_EQ(config.discount, 0.1);
}

TEST(Agent, UpdateFollowsAlgorithm1Exactly)
{
    QLearningAgent agent(3, 2, paperConfig(), Rng(1));
    // Pin the table to known values.
    QTable &table = agent.mutableTable();
    table.at(0, 0) = 1.0f;
    table.at(0, 1) = 0.0f;
    table.at(1, 0) = 2.0f;
    table.at(1, 1) = 4.0f;

    // Q(0,0) <- Q + gamma [R + mu max_a Q(1,a) - Q]
    //        = 1 + 0.9 [10 + 0.1 * 4 - 1] = 1 + 0.9 * 9.4 = 9.46.
    agent.update(0, 0, 10.0, 1);
    EXPECT_NEAR(agent.table().at(0, 0), 9.46, 1e-5);
    EXPECT_NEAR(agent.lastTdError(), 9.4, 1e-5);
}

TEST(Agent, NegativeRewardLowersValue)
{
    QLearningAgent agent(2, 2, paperConfig(), Rng(2));
    agent.mutableTable().at(0, 1) = 0.5f;
    agent.mutableTable().at(1, 0) = 0.0f;
    agent.mutableTable().at(1, 1) = 0.0f;
    agent.update(0, 1, -100.0, 1);
    EXPECT_LT(agent.table().at(0, 1), -80.0f);
}

TEST(Agent, LearningDisabledFreezesTable)
{
    QLearningAgent agent(2, 2, paperConfig(), Rng(3));
    const float before = agent.table().at(0, 0);
    agent.setLearning(false);
    agent.update(0, 0, 100.0, 1);
    EXPECT_FLOAT_EQ(agent.table().at(0, 0), before);
    // Convergence tracking still observes rewards.
    EXPECT_EQ(agent.convergence().count(), 1);
}

TEST(Agent, GreedySelectionWithoutExploration)
{
    QLearningAgent agent(1, 3, paperConfig(), Rng(4));
    agent.setExploration(false);
    agent.mutableTable().at(0, 0) = 0.0f;
    agent.mutableTable().at(0, 1) = 9.0f;
    agent.mutableTable().at(0, 2) = 1.0f;
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(agent.selectAction(0), 1);
    }
}

TEST(Agent, EpsilonGreedyExploresAtTheConfiguredRate)
{
    QLearningConfig config;
    config.epsilon = 0.25;
    QLearningAgent agent(1, 4, config, Rng(5));
    agent.mutableTable().at(0, 2) = 10.0f; // greedy pick is action 2
    int non_greedy = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        if (agent.selectAction(0) != 2) {
            ++non_greedy;
        }
    }
    // Random picks land on the greedy action 1/4 of the time, so the
    // observable non-greedy rate is epsilon * 3/4.
    EXPECT_NEAR(static_cast<double>(non_greedy) / trials, 0.25 * 0.75,
                0.02);
}

TEST(Agent, LearnsBestArmInStochasticBandit)
{
    // Single-state bandit with noisy rewards; the agent must find the
    // best arm (arm 2, mean 1.0 vs 0.2 and 0.5).
    QLearningAgent agent(1, 3, paperConfig(), Rng(6));
    Rng noise(7);
    const double means[] = {0.2, 0.5, 1.0};
    for (int step = 0; step < 600; ++step) {
        const int arm = agent.selectAction(0);
        const double reward = noise.normal(means[arm], 0.05);
        agent.update(0, arm, reward, 0);
    }
    EXPECT_EQ(agent.bestAction(0), 2);
    EXPECT_NEAR(agent.table().at(0, 2), 1.0 / (1.0 - 0.1), 0.2);
}

TEST(Agent, ContextualBanditLearnsPerState)
{
    // Two states with opposite best actions.
    QLearningAgent agent(2, 2, paperConfig(), Rng(8));
    Rng noise(9);
    for (int step = 0; step < 800; ++step) {
        const int state = step % 2;
        const int action = agent.selectAction(state);
        const double reward =
            (state == 0) == (action == 0) ? 1.0 : -1.0;
        agent.update(state, action, reward + noise.normal(0.0, 0.05),
                     1 - state);
    }
    EXPECT_EQ(agent.bestAction(0), 0);
    EXPECT_EQ(agent.bestAction(1), 1);
}

TEST(ConvergenceTracker, DetectsStableRewards)
{
    ConvergenceTracker tracker(10, 0.08);
    for (int i = 0; i < 9; ++i) {
        tracker.add(100.0);
    }
    EXPECT_FALSE(tracker.converged()); // window not yet full
    tracker.add(100.0);
    EXPECT_TRUE(tracker.converged());
    EXPECT_NEAR(tracker.windowMean(), 100.0, 1e-12);
}

TEST(ConvergenceTracker, RejectsVolatileRewards)
{
    ConvergenceTracker tracker(10, 0.08);
    for (int i = 0; i < 20; ++i) {
        tracker.add(i % 2 == 0 ? 100.0 : -100.0);
    }
    EXPECT_FALSE(tracker.converged());
}

TEST(ConvergenceTracker, RecoversAfterTransient)
{
    ConvergenceTracker tracker(10, 0.08);
    for (int i = 0; i < 10; ++i) {
        tracker.add(-500.0 + 40.0 * i); // climbing: not converged
    }
    EXPECT_FALSE(tracker.converged());
    for (int i = 0; i < 10; ++i) {
        tracker.add(-50.0);
    }
    EXPECT_TRUE(tracker.converged());
    EXPECT_EQ(tracker.count(), 20);
}

/**
 * The pre-optimization tracker: rescans the whole window on every
 * converged() call. Kept here as the reference implementation for the
 * verdict-parity pin on the O(1) running-sum tracker.
 */
class NaiveConvergenceTracker {
  public:
    NaiveConvergenceTracker(int window, double tolerance)
        : window_(window), tolerance_(tolerance)
    {
    }

    void
    add(double reward)
    {
        recent_.push_back(reward);
        if (static_cast<int>(recent_.size()) > window_) {
            recent_.pop_front();
        }
    }

    double
    windowMean() const
    {
        if (recent_.empty()) {
            return 0.0;
        }
        double sum = 0.0;
        for (const double r : recent_) {
            sum += r;
        }
        return sum / static_cast<double>(recent_.size());
    }

    bool
    converged() const
    {
        if (static_cast<int>(recent_.size()) < window_) {
            return false;
        }
        const std::size_t half = recent_.size() / 2;
        double first_sum = 0.0;
        double second_sum = 0.0;
        for (std::size_t i = 0; i < recent_.size(); ++i) {
            (i < half ? first_sum : second_sum) += recent_[i];
        }
        const double first = first_sum / static_cast<double>(half);
        const double second =
            second_sum / static_cast<double>(recent_.size() - half);

        const double mean = windowMean();
        double sq = 0.0;
        for (const double r : recent_) {
            sq += (r - mean) * (r - mean);
        }
        const double stddev =
            std::sqrt(sq / static_cast<double>(recent_.size()));

        const double scale = std::max(std::fabs(mean), 10.0);
        return std::fabs(second - first) <= tolerance_ * scale
            && stddev <= 0.5 * scale;
    }

  private:
    int window_;
    double tolerance_;
    std::deque<double> recent_;
};

TEST(ConvergenceTracker, MatchesNaiveVerdictsOnRandomStream)
{
    ConvergenceTracker fast(10, 0.08);
    NaiveConvergenceTracker naive(10, 0.08);
    Rng rng(20260805);
    // Mix of regimes: noisy rewards, near-constant plateaus (the
    // converged case), and level shifts, at the millijoule reward
    // magnitudes training produces.
    double level = -120.0;
    int converged_verdicts = 0;
    for (int step = 0; step < 5000; ++step) {
        if (step % 250 == 0) {
            level = -200.0 * rng.uniform();
        }
        const bool plateau = (step / 125) % 2 == 1;
        const double noise = plateau ? 0.5 : 80.0;
        const double reward = level + noise * (rng.uniform() - 0.5);
        fast.add(reward);
        naive.add(reward);
        ASSERT_EQ(fast.converged(), naive.converged())
            << "verdicts diverged at step " << step;
        EXPECT_NEAR(fast.windowMean(), naive.windowMean(), 1e-9);
        converged_verdicts += fast.converged() ? 1 : 0;
    }
    // The stream must actually exercise both verdicts for the parity
    // pin to mean anything.
    EXPECT_GT(converged_verdicts, 100);
    EXPECT_LT(converged_verdicts, 4900);
}

} // namespace
} // namespace autoscale::core
