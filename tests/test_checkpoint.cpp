/**
 * @file
 * Tests for the crash-safe checkpoint format (DESIGN.md §12): CRC32
 * vectors, encode/decode round trips, corruption and truncation
 * detection, and the two-deep rotation of CheckpointManager.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/qtable.h"
#include "serve/checkpoint.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace autoscale::serve {
namespace {

core::QTable
makeTable(std::uint64_t seed = 9)
{
    core::QTable table(6, 4);
    Rng rng(seed);
    table.randomize(rng, -2.0, 2.0);
    return table;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

/** Unique scratch path under the test temp dir. */
std::string
scratchPath(const std::string &name)
{
    return testing::TempDir() + "autoscale_ckpt_" + name;
}

TEST(Crc32, CanonicalCheckValue)
{
    // IEEE 802.3 check vector.
    EXPECT_EQ(crc32(std::string("123456789")), 0xcbf43926u);
    EXPECT_EQ(crc32(std::string()), 0u);
}

TEST(Crc32, IncrementalMatchesWholeBuffer)
{
    const std::string bytes = "autoscale-checkpoint v1 demo 42\n0 1\n";
    std::uint32_t running = 0;
    for (const char c : bytes) {
        running = crc32Update(running, &c, 1);
    }
    EXPECT_EQ(running, crc32(bytes));
}

TEST(Checkpoint, EncodeDecodeRoundTrip)
{
    const core::QTable table = makeTable();
    const std::string bytes = encodeCheckpoint("fingerprint-abc", 321,
                                               table);
    CheckpointData decoded;
    std::string error;
    ASSERT_TRUE(decodeCheckpoint(bytes, &decoded, &error)) << error;
    EXPECT_EQ(decoded.fingerprint, "fingerprint-abc");
    EXPECT_EQ(decoded.step, 321);
    ASSERT_EQ(decoded.table.numStates(), table.numStates());
    ASSERT_EQ(decoded.table.numActions(), table.numActions());
    for (int s = 0; s < table.numStates(); ++s) {
        for (int a = 0; a < table.numActions(); ++a) {
            EXPECT_FLOAT_EQ(decoded.table.at(s, a), table.at(s, a));
        }
    }
}

TEST(Checkpoint, EveryFlippedByteIsDetected)
{
    const std::string bytes = encodeCheckpoint("fp", 7, makeTable());
    // Flip the low bit of one byte at a time across the whole file;
    // every mutation must be rejected (CRC for the body, parse checks
    // for the footer). Note ^0x20 would be too weak a test here: a
    // case-flipped hex digit in the footer parses to the same CRC.
    for (std::size_t i = 0; i < bytes.size(); i += 7) {
        std::string mutated = bytes;
        mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
        if (mutated == bytes) {
            continue;
        }
        CheckpointData decoded;
        std::string error;
        EXPECT_FALSE(decodeCheckpoint(mutated, &decoded, &error))
            << "offset " << i << " accepted";
    }
}

TEST(Checkpoint, TruncationIsDetected)
{
    const std::string bytes = encodeCheckpoint("fp", 7, makeTable());
    CheckpointData decoded;
    std::string error;
    for (const double fraction : {0.0, 0.25, 0.5, 0.9}) {
        const std::string cut = bytes.substr(
            0, static_cast<std::size_t>(fraction
                                        * static_cast<double>(bytes.size())));
        EXPECT_FALSE(decodeCheckpoint(cut, &decoded, &error))
            << "kept " << fraction;
    }
    // Cutting just the last byte of the footer must also fail.
    EXPECT_FALSE(decodeCheckpoint(bytes.substr(0, bytes.size() - 1),
                                  &decoded, &error));
}

TEST(Checkpoint, WrongMagicIsRejected)
{
    std::string bytes = encodeCheckpoint("fp", 7, makeTable());
    bytes.replace(0, 9, "malicious");
    CheckpointData decoded;
    std::string error;
    EXPECT_FALSE(decodeCheckpoint(bytes, &decoded, &error));
}

TEST(CheckpointManager, SaveRotatesAndLoadPrefersPrimary)
{
    const std::string path = scratchPath("rotate");
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());

    CheckpointManager manager(path);
    ASSERT_TRUE(manager.save("fp", 10, makeTable(1)));
    ASSERT_TRUE(manager.save("fp", 20, makeTable(2)));
    EXPECT_EQ(manager.written(), 2);

    const CheckpointLoadResult result = manager.load();
    ASSERT_TRUE(result.loaded);
    EXPECT_EQ(result.source, CheckpointSource::Primary);
    EXPECT_EQ(result.data.step, 20);
    EXPECT_EQ(result.corruptDetected, 0);

    // The rotated previous checkpoint holds the older step.
    CheckpointData prev;
    std::string error;
    ASSERT_TRUE(decodeCheckpoint(readFile(manager.prevPath()), &prev,
                                 &error))
        << error;
    EXPECT_EQ(prev.step, 10);
}

TEST(CheckpointManager, CorruptPrimaryFallsBackToPrevious)
{
    const std::string path = scratchPath("fallback");
    CheckpointManager manager(path);
    ASSERT_TRUE(manager.save("fp", 10, makeTable(1)));
    ASSERT_TRUE(manager.save("fp", 20, makeTable(2)));

    // Simulate a torn write: chop the tail off the primary.
    const std::string bytes = readFile(path);
    writeFile(path, bytes.substr(0, bytes.size() / 2));

    const CheckpointLoadResult result = manager.load();
    ASSERT_TRUE(result.loaded);
    EXPECT_EQ(result.source, CheckpointSource::Previous);
    EXPECT_EQ(result.data.step, 10);
    EXPECT_EQ(result.corruptDetected, 1);
}

TEST(CheckpointManager, NothingToRecoverIsACleanColdStart)
{
    const std::string path = scratchPath("missing");
    std::remove(path.c_str());
    std::remove((path + ".prev").c_str());
    const CheckpointLoadResult result = CheckpointManager(path).load();
    EXPECT_FALSE(result.loaded);
    EXPECT_EQ(result.source, CheckpointSource::None);
    EXPECT_EQ(result.corruptDetected, 0);
}

TEST(CheckpointManager, BothCopiesCorruptReportsBoth)
{
    const std::string path = scratchPath("double");
    CheckpointManager manager(path);
    ASSERT_TRUE(manager.save("fp", 10, makeTable(1)));
    ASSERT_TRUE(manager.save("fp", 20, makeTable(2)));
    writeFile(path, "garbage");
    writeFile(path + ".prev", "more garbage");

    const CheckpointLoadResult result = manager.load();
    EXPECT_FALSE(result.loaded);
    EXPECT_EQ(result.corruptDetected, 2);
    EXPECT_FALSE(result.error.empty());
}

} // namespace
} // namespace autoscale::serve
