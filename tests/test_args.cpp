/** @file Unit tests for the CLI argument parser (util/args.h). */

#include <gtest/gtest.h>

#include "util/args.h"

namespace autoscale {
namespace {

Args
make(std::initializer_list<const char *> tokens)
{
    std::vector<std::string> list;
    for (const char *token : tokens) {
        list.emplace_back(token);
    }
    return Args(std::move(list));
}

TEST(Args, GetReturnsFollowingToken)
{
    const Args args = make({"prog", "--device", "Mi8Pro", "--runs", "40"});
    EXPECT_EQ(args.get("--device"), "Mi8Pro");
    EXPECT_EQ(args.get("--runs"), "40");
}

TEST(Args, FallbacksWhenAbsent)
{
    const Args args = make({"prog"});
    EXPECT_EQ(args.get("--device", "default"), "default");
    EXPECT_DOUBLE_EQ(args.getDouble("--co-cpu", 0.25), 0.25);
    EXPECT_EQ(args.getInt("--runs", 7), 7);
}

TEST(Args, TrailingFlagHasNoValue)
{
    const Args args = make({"prog", "--device"});
    EXPECT_EQ(args.get("--device", "fallback"), "fallback");
}

TEST(Args, NumericParsing)
{
    const Args args = make({"prog", "--rssi", "-85.5", "--n", "12"});
    EXPECT_DOUBLE_EQ(args.getDouble("--rssi", 0.0), -85.5);
    EXPECT_EQ(args.getInt("--n", 0), 12);
}

TEST(Args, MalformedNumbersFallBack)
{
    // `autoscale_cli --runs abc` used to abort with an uncaught
    // std::invalid_argument out of std::stoi.
    const Args args = make({"prog", "--runs", "abc", "--rssi", "weak"});
    EXPECT_EQ(args.getInt("--runs", 7), 7);
    EXPECT_DOUBLE_EQ(args.getDouble("--rssi", -55.0), -55.0);
}

TEST(Args, TrailingGarbageFallsBack)
{
    const Args args = make({"prog", "--runs", "12abc", "--co-cpu",
                            "0.5x", "--top", "3.5"});
    EXPECT_EQ(args.getInt("--runs", 7), 7);
    EXPECT_DOUBLE_EQ(args.getDouble("--co-cpu", 0.25), 0.25);
    // "3.5" is not an integer token: stoi would silently truncate.
    EXPECT_EQ(args.getInt("--top", 8), 8);
}

TEST(Args, OutOfRangeNumbersFallBack)
{
    const Args args = make({"prog", "--n", "99999999999999999999",
                            "--x", "1e999"});
    EXPECT_EQ(args.getInt("--n", 3), 3);
    EXPECT_DOUBLE_EQ(args.getDouble("--x", 1.5), 1.5);
}

TEST(Args, NegativeAndScientificNumbersStillParse)
{
    const Args args = make({"prog", "--n", "-12", "--x", "2.5e-3"});
    EXPECT_EQ(args.getInt("--n", 0), -12);
    EXPECT_DOUBLE_EQ(args.getDouble("--x", 0.0), 2.5e-3);
}

TEST(Args, HasDetectsSwitches)
{
    const Args args = make({"prog", "--csv", "--device", "X"});
    EXPECT_TRUE(args.has("--csv"));
    EXPECT_TRUE(args.has("--device"));
    EXPECT_FALSE(args.has("--json"));
}

TEST(Args, LastOccurrenceWins)
{
    // Repeated flags resolve last-one-wins (with a stderr warning);
    // strict callers reject conflicts via hasConflictingDuplicate().
    const Args args = make({"prog", "--seed", "1", "--seed", "2"});
    EXPECT_EQ(args.getInt("--seed", 0), 2);
}

TEST(Args, EqualsFormAcceptedEverywhere)
{
    const Args args = make({"prog", "--device=Mi8Pro", "--rssi=-85.5",
                            "--runs=12", "--csv"});
    EXPECT_EQ(args.get("--device"), "Mi8Pro");
    EXPECT_DOUBLE_EQ(args.getDouble("--rssi", 0.0), -85.5);
    EXPECT_EQ(args.getInt("--runs", 0), 12);
    EXPECT_TRUE(args.has("--device"));
    EXPECT_TRUE(args.has("--csv"));
}

TEST(Args, EqualsFormSplitsOnlyLongFlags)
{
    // Positional operands and short options keep their '='; an empty
    // value after '=' is a present-but-empty value, not the next flag.
    const Args args = make({"prog", "a=b", "-x=y", "--empty=", "--n", "4"});
    EXPECT_FALSE(args.has("--a"));
    EXPECT_FALSE(args.has("-x"));
    EXPECT_EQ(args.get("--empty", "fallback"), "");
    EXPECT_EQ(args.getInt("--n", 0), 4);
}

TEST(Args, EqualsAndSpaceFormsMix)
{
    const Args args = make({"prog", "--seed=1", "--seed", "2"});
    EXPECT_EQ(args.getInt("--seed", 0), 2);
    EXPECT_TRUE(args.hasConflictingDuplicate("--seed"));
}

TEST(Args, ConflictingDuplicateDetection)
{
    const Args conflicting =
        make({"prog", "--jobs", "1", "--jobs", "4"});
    EXPECT_TRUE(conflicting.hasConflictingDuplicate("--jobs"));

    // A repeat of the identical value is benign: last-one-wins returns
    // it unchanged.
    const Args benign = make({"prog", "--jobs", "2", "--jobs", "2"});
    EXPECT_FALSE(benign.hasConflictingDuplicate("--jobs"));

    const Args single = make({"prog", "--jobs", "2"});
    EXPECT_FALSE(single.hasConflictingDuplicate("--jobs"));
    EXPECT_FALSE(single.hasConflictingDuplicate("--seed"));
}

TEST(Args, ArgcArgvConstructor)
{
    const char *argv[] = {"prog", "--x", "y"};
    const Args args(3, argv);
    EXPECT_EQ(args.size(), 3u);
    EXPECT_EQ(args.get("--x"), "y");
}

} // namespace
} // namespace autoscale
