/** @file Unit tests for the CLI argument parser (util/args.h). */

#include <gtest/gtest.h>

#include "util/args.h"

namespace autoscale {
namespace {

Args
make(std::initializer_list<const char *> tokens)
{
    std::vector<std::string> list;
    for (const char *token : tokens) {
        list.emplace_back(token);
    }
    return Args(std::move(list));
}

TEST(Args, GetReturnsFollowingToken)
{
    const Args args = make({"prog", "--device", "Mi8Pro", "--runs", "40"});
    EXPECT_EQ(args.get("--device"), "Mi8Pro");
    EXPECT_EQ(args.get("--runs"), "40");
}

TEST(Args, FallbacksWhenAbsent)
{
    const Args args = make({"prog"});
    EXPECT_EQ(args.get("--device", "default"), "default");
    EXPECT_DOUBLE_EQ(args.getDouble("--co-cpu", 0.25), 0.25);
    EXPECT_EQ(args.getInt("--runs", 7), 7);
}

TEST(Args, TrailingFlagHasNoValue)
{
    const Args args = make({"prog", "--device"});
    EXPECT_EQ(args.get("--device", "fallback"), "fallback");
}

TEST(Args, NumericParsing)
{
    const Args args = make({"prog", "--rssi", "-85.5", "--n", "12"});
    EXPECT_DOUBLE_EQ(args.getDouble("--rssi", 0.0), -85.5);
    EXPECT_EQ(args.getInt("--n", 0), 12);
}

TEST(Args, MalformedNumbersFallBack)
{
    // `autoscale_cli --runs abc` used to abort with an uncaught
    // std::invalid_argument out of std::stoi.
    const Args args = make({"prog", "--runs", "abc", "--rssi", "weak"});
    EXPECT_EQ(args.getInt("--runs", 7), 7);
    EXPECT_DOUBLE_EQ(args.getDouble("--rssi", -55.0), -55.0);
}

TEST(Args, TrailingGarbageFallsBack)
{
    const Args args = make({"prog", "--runs", "12abc", "--co-cpu",
                            "0.5x", "--top", "3.5"});
    EXPECT_EQ(args.getInt("--runs", 7), 7);
    EXPECT_DOUBLE_EQ(args.getDouble("--co-cpu", 0.25), 0.25);
    // "3.5" is not an integer token: stoi would silently truncate.
    EXPECT_EQ(args.getInt("--top", 8), 8);
}

TEST(Args, OutOfRangeNumbersFallBack)
{
    const Args args = make({"prog", "--n", "99999999999999999999",
                            "--x", "1e999"});
    EXPECT_EQ(args.getInt("--n", 3), 3);
    EXPECT_DOUBLE_EQ(args.getDouble("--x", 1.5), 1.5);
}

TEST(Args, NegativeAndScientificNumbersStillParse)
{
    const Args args = make({"prog", "--n", "-12", "--x", "2.5e-3"});
    EXPECT_EQ(args.getInt("--n", 0), -12);
    EXPECT_DOUBLE_EQ(args.getDouble("--x", 0.0), 2.5e-3);
}

TEST(Args, HasDetectsSwitches)
{
    const Args args = make({"prog", "--csv", "--device", "X"});
    EXPECT_TRUE(args.has("--csv"));
    EXPECT_TRUE(args.has("--device"));
    EXPECT_FALSE(args.has("--json"));
}

TEST(Args, LastOccurrenceWins)
{
    // Repeated flags resolve last-one-wins (with a stderr warning);
    // strict callers reject conflicts via hasConflictingDuplicate().
    const Args args = make({"prog", "--seed", "1", "--seed", "2"});
    EXPECT_EQ(args.getInt("--seed", 0), 2);
}

TEST(Args, EqualsFormAcceptedEverywhere)
{
    const Args args = make({"prog", "--device=Mi8Pro", "--rssi=-85.5",
                            "--runs=12", "--csv"});
    EXPECT_EQ(args.get("--device"), "Mi8Pro");
    EXPECT_DOUBLE_EQ(args.getDouble("--rssi", 0.0), -85.5);
    EXPECT_EQ(args.getInt("--runs", 0), 12);
    EXPECT_TRUE(args.has("--device"));
    EXPECT_TRUE(args.has("--csv"));
}

TEST(Args, EqualsFormSplitsOnlyLongFlags)
{
    // Positional operands and short options keep their '='; an empty
    // value after '=' is a present-but-empty value, not the next flag.
    const Args args = make({"prog", "a=b", "-x=y", "--empty=", "--n", "4"});
    EXPECT_FALSE(args.has("--a"));
    EXPECT_FALSE(args.has("-x"));
    EXPECT_EQ(args.get("--empty", "fallback"), "");
    EXPECT_EQ(args.getInt("--n", 0), 4);
}

TEST(Args, EqualsAndSpaceFormsMix)
{
    const Args args = make({"prog", "--seed=1", "--seed", "2"});
    EXPECT_EQ(args.getInt("--seed", 0), 2);
    EXPECT_TRUE(args.hasConflictingDuplicate("--seed"));
}

TEST(Args, ConflictingDuplicateDetection)
{
    const Args conflicting =
        make({"prog", "--jobs", "1", "--jobs", "4"});
    EXPECT_TRUE(conflicting.hasConflictingDuplicate("--jobs"));

    // A repeat of the identical value is benign: last-one-wins returns
    // it unchanged.
    const Args benign = make({"prog", "--jobs", "2", "--jobs", "2"});
    EXPECT_FALSE(benign.hasConflictingDuplicate("--jobs"));

    const Args single = make({"prog", "--jobs", "2"});
    EXPECT_FALSE(single.hasConflictingDuplicate("--jobs"));
    EXPECT_FALSE(single.hasConflictingDuplicate("--seed"));
}

TEST(Args, ParseDoubleDistinguishesAbsentFromMalformed)
{
    // getDouble cannot tell "flag missing" from "flag present but
    // broken" — both return the fallback. parseDouble closes that gap
    // for callers (the scenario merger) whose conflict rules depend on
    // whether the flag was actually given.
    const Args args = make({"prog", "--ok", "2.5", "--bad", "x",
                            "--empty=", "--trail"});
    double value = -1.0;
    EXPECT_EQ(args.parseDouble("--missing", &value),
              Args::ParseStatus::Absent);
    EXPECT_DOUBLE_EQ(value, -1.0); // Untouched on Absent.

    EXPECT_EQ(args.parseDouble("--ok", &value), Args::ParseStatus::Ok);
    EXPECT_DOUBLE_EQ(value, 2.5);

    value = -1.0;
    EXPECT_EQ(args.parseDouble("--bad", &value),
              Args::ParseStatus::Malformed);
    EXPECT_DOUBLE_EQ(value, -1.0); // Untouched on Malformed.

    // A present flag with no value is a usage error, not an absence.
    EXPECT_EQ(args.parseDouble("--empty", &value),
              Args::ParseStatus::Malformed);
    EXPECT_EQ(args.parseDouble("--trail", &value),
              Args::ParseStatus::Malformed);
}

TEST(Args, ParseDoubleRejectsGarbageAndOverflow)
{
    const Args args = make({"prog", "--a", "0.5x", "--b", "1e999",
                            "--c", "-85.5", "--d", "2.5e-3"});
    double value = 0.0;
    EXPECT_EQ(args.parseDouble("--a", &value),
              Args::ParseStatus::Malformed);
    EXPECT_EQ(args.parseDouble("--b", &value),
              Args::ParseStatus::Malformed);
    EXPECT_EQ(args.parseDouble("--c", &value), Args::ParseStatus::Ok);
    EXPECT_DOUBLE_EQ(value, -85.5);
    EXPECT_EQ(args.parseDouble("--d", &value), Args::ParseStatus::Ok);
    EXPECT_DOUBLE_EQ(value, 2.5e-3);
}

TEST(Args, ParseIntDistinguishesAbsentFromMalformed)
{
    const Args args = make({"prog", "--n", "12", "--bad", "3.5",
                            "--huge", "99999999999999999999"});
    int value = 7;
    EXPECT_EQ(args.parseInt("--missing", &value),
              Args::ParseStatus::Absent);
    EXPECT_EQ(value, 7);

    EXPECT_EQ(args.parseInt("--n", &value), Args::ParseStatus::Ok);
    EXPECT_EQ(value, 12);

    value = 7;
    // "3.5" would silently truncate under stoi; here it is Malformed.
    EXPECT_EQ(args.parseInt("--bad", &value),
              Args::ParseStatus::Malformed);
    EXPECT_EQ(args.parseInt("--huge", &value),
              Args::ParseStatus::Malformed);
    EXPECT_EQ(value, 7);
}

TEST(Args, ArgcArgvConstructor)
{
    const char *argv[] = {"prog", "--x", "y"};
    const Args args(3, argv);
    EXPECT_EQ(args.size(), 3u);
    EXPECT_EQ(args.get("--x"), "y");
}

} // namespace
} // namespace autoscale
