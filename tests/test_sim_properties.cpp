/**
 * @file
 * Property-style sweeps over the whole (device x network x target)
 * space: physical invariants the simulator must satisfy everywhere,
 * not just on hand-picked examples.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/action_space.h"
#include "dnn/model_zoo.h"
#include "platform/device_zoo.h"
#include "sim/simulator.h"

namespace autoscale::sim {
namespace {

using Combo = std::tuple<std::string, std::string>; // (phone, network)

class SimProperties : public ::testing::TestWithParam<Combo> {
  protected:
    InferenceSimulator
    makeSim() const
    {
        return InferenceSimulator::makeDefault(
            platform::makePhone(std::get<0>(GetParam())));
    }

    const dnn::Network &
    network() const
    {
        return dnn::findModel(std::get<1>(GetParam()));
    }
};

TEST_P(SimProperties, EveryFeasibleActionYieldsPhysicalOutcomes)
{
    const InferenceSimulator sim = makeSim();
    const dnn::Network &net = network();
    const env::EnvState env;
    for (const auto &action : core::buildActionSpace(sim)) {
        const Outcome o = sim.expected(net, action, env);
        if (!o.feasible) {
            continue;
        }
        EXPECT_GT(o.latencyMs, 0.0) << action.label();
        EXPECT_GT(o.energyJ, 0.0) << action.label();
        EXPECT_GT(o.accuracyPct, 0.0) << action.label();
        EXPECT_LE(o.accuracyPct, 100.0) << action.label();
        EXPECT_DOUBLE_EQ(o.energyJ, o.estimatedEnergyJ) << action.label();
        // Latency decomposes into compute + transfer + protocol time.
        EXPECT_GE(o.latencyMs + 1e-9, o.computeMs + o.txMs + o.rxMs)
            << action.label();
    }
}

TEST_P(SimProperties, MeasuredRunsStayNearTheModel)
{
    const InferenceSimulator sim = makeSim();
    const dnn::Network &net = network();
    const env::EnvState env;
    Rng rng(2718);
    for (const auto &action : core::buildActionSpace(sim)) {
        const Outcome expected = sim.expected(net, action, env);
        if (!expected.feasible) {
            continue;
        }
        const Outcome measured = sim.run(net, action, env, rng);
        // Log-normal noise with sigma <= 0.09: 6 sigma bounds.
        EXPECT_GT(measured.latencyMs, expected.latencyMs * 0.6)
            << action.label();
        EXPECT_LT(measured.latencyMs, expected.latencyMs * 1.6)
            << action.label();
        EXPECT_GT(measured.energyJ, expected.energyJ * 0.4)
            << action.label();
        EXPECT_LT(measured.energyJ, expected.energyJ * 2.5)
            << action.label();
    }
}

TEST_P(SimProperties, InterferenceNeverSpeedsUpLocalExecution)
{
    const InferenceSimulator sim = makeSim();
    const dnn::Network &net = network();
    env::EnvState hog;
    hog.coCpuUtil = 0.7;
    hog.coMemUtil = 0.6;
    hog.thermalFactor = 0.9;
    for (const auto &action : core::buildActionSpace(sim)) {
        const Outcome clean = sim.expected(net, action, env::EnvState{});
        if (!clean.feasible) {
            continue;
        }
        const Outcome contended = sim.expected(net, action, hog);
        if (action.place == TargetPlace::Local) {
            EXPECT_GE(contended.latencyMs + 1e-9, clean.latencyMs)
                << action.label();
        } else {
            // Remote compute and transfer are untouched by on-device
            // interference (energy too, since the co-runner's draw is
            // not attributed to the inference).
            EXPECT_NEAR(contended.latencyMs, clean.latencyMs, 1e-9)
                << action.label();
        }
    }
}

TEST_P(SimProperties, WeakSignalOnlyAffectsTheMatchingLink)
{
    const InferenceSimulator sim = makeSim();
    const dnn::Network &net = network();
    env::EnvState weak_wlan;
    weak_wlan.rssiWlanDbm = -88.0;
    env::EnvState weak_p2p;
    weak_p2p.rssiP2pDbm = -88.0;
    for (const auto &action : core::buildActionSpace(sim)) {
        const Outcome clean = sim.expected(net, action, env::EnvState{});
        if (!clean.feasible) {
            continue;
        }
        const Outcome w = sim.expected(net, action, weak_wlan);
        const Outcome p = sim.expected(net, action, weak_p2p);
        switch (action.place) {
          case TargetPlace::Local:
            EXPECT_NEAR(w.latencyMs, clean.latencyMs, 1e-9);
            EXPECT_NEAR(p.latencyMs, clean.latencyMs, 1e-9);
            break;
          case TargetPlace::Cloud:
            EXPECT_GT(w.latencyMs, clean.latencyMs);
            EXPECT_NEAR(p.latencyMs, clean.latencyMs, 1e-9);
            break;
          case TargetPlace::ConnectedEdge:
            EXPECT_NEAR(w.latencyMs, clean.latencyMs, 1e-9);
            EXPECT_GT(p.latencyMs, clean.latencyMs);
            break;
        }
    }
}

TEST_P(SimProperties, QuantizationNeverSlowsASupportingProcessor)
{
    const InferenceSimulator sim = makeSim();
    const dnn::Network &net = network();
    if (!net.supportedOnCoProcessors()) {
        GTEST_SKIP() << "recurrent network";
    }
    const env::EnvState env;
    const platform::Device &device = sim.localDevice();
    // CPU INT8 vs FP32 at the same step.
    for (std::size_t vf = 0; vf < device.cpu().numVfSteps(); vf += 4) {
        const Outcome fp32 = sim.expected(
            net,
            ExecutionTarget{TargetPlace::Local,
                            platform::ProcKind::MobileCpu, vf,
                            dnn::Precision::FP32},
            env);
        const Outcome int8 = sim.expected(
            net,
            ExecutionTarget{TargetPlace::Local,
                            platform::ProcKind::MobileCpu, vf,
                            dnn::Precision::INT8},
            env);
        EXPECT_LT(int8.latencyMs, fp32.latencyMs) << "vf " << vf;
        EXPECT_LT(int8.energyJ, fp32.energyJ) << "vf " << vf;
    }
}

TEST_P(SimProperties, PartitionTransferShrinksWithDepth)
{
    const InferenceSimulator sim = makeSim();
    const dnn::Network &net = network();
    if (!net.supportedOnCoProcessors() && net.numRc() > 0) {
        GTEST_SKIP() << "recurrent network";
    }
    const env::EnvState env;
    double previous_tx = 1e300;
    // Activation footprints decay with depth, so uplink time at the
    // split shrinks monotonically across quartile split points.
    for (double fraction : {0.25, 0.5, 0.75}) {
        PartitionSpec spec;
        spec.splitLayer = static_cast<std::size_t>(
            fraction * static_cast<double>(net.layers().size()));
        if (spec.splitLayer == 0) {
            continue;
        }
        spec.localProc = platform::ProcKind::MobileCpu;
        spec.vfIndex = sim.localDevice().cpu().maxVfIndex();
        const Outcome o = sim.expectedPartitioned(net, spec, env);
        ASSERT_TRUE(o.feasible);
        EXPECT_LT(o.txMs, previous_tx) << fraction;
        previous_tx = o.txMs;
    }
}

std::vector<Combo>
allCombos()
{
    std::vector<Combo> combos;
    for (const std::string &phone : platform::phoneNames()) {
        for (const auto &net : dnn::modelZoo()) {
            combos.emplace_back(phone, net.name());
        }
    }
    return combos;
}

INSTANTIATE_TEST_SUITE_P(
    AllDevicesAllNetworks, SimProperties, ::testing::ValuesIn(allCombos()),
    [](const ::testing::TestParamInfo<Combo> &info) {
        std::string name = std::get<0>(info.param) + "_"
            + std::get<1>(info.param);
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c))) {
                c = '_';
            }
        }
        return name;
    });

} // namespace
} // namespace autoscale::sim
