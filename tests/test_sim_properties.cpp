/**
 * @file
 * Property-style sweeps over the whole (device x network x target)
 * space: physical invariants the simulator must satisfy everywhere,
 * not just on hand-picked examples.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "core/action_space.h"
#include "dnn/model_zoo.h"
#include "dnn/synthetic.h"
#include "fault/fault_injector.h"
#include "fault/retry.h"
#include "platform/device_zoo.h"
#include "sim/simulator.h"

namespace autoscale::sim {
namespace {

using Combo = std::tuple<std::string, std::string>; // (phone, network)

class SimProperties : public ::testing::TestWithParam<Combo> {
  protected:
    InferenceSimulator
    makeSim() const
    {
        return InferenceSimulator::makeDefault(
            platform::makePhone(std::get<0>(GetParam())));
    }

    const dnn::Network &
    network() const
    {
        return dnn::findModel(std::get<1>(GetParam()));
    }
};

TEST_P(SimProperties, EveryFeasibleActionYieldsPhysicalOutcomes)
{
    const InferenceSimulator sim = makeSim();
    const dnn::Network &net = network();
    const env::EnvState env;
    for (const auto &action : core::buildActionSpace(sim)) {
        const Outcome o = sim.expected(net, action, env);
        if (!o.feasible) {
            continue;
        }
        EXPECT_GT(o.latencyMs, 0.0) << action.label();
        EXPECT_GT(o.energyJ, 0.0) << action.label();
        EXPECT_GT(o.accuracyPct, 0.0) << action.label();
        EXPECT_LE(o.accuracyPct, 100.0) << action.label();
        EXPECT_DOUBLE_EQ(o.energyJ, o.estimatedEnergyJ) << action.label();
        // Latency decomposes into compute + transfer + protocol time.
        EXPECT_GE(o.latencyMs + 1e-9, o.computeMs + o.txMs + o.rxMs)
            << action.label();
    }
}

TEST_P(SimProperties, MeasuredRunsStayNearTheModel)
{
    const InferenceSimulator sim = makeSim();
    const dnn::Network &net = network();
    const env::EnvState env;
    Rng rng(2718);
    for (const auto &action : core::buildActionSpace(sim)) {
        const Outcome expected = sim.expected(net, action, env);
        if (!expected.feasible) {
            continue;
        }
        const Outcome measured = sim.run(net, action, env, rng);
        // Log-normal noise with sigma <= 0.09: 6 sigma bounds.
        EXPECT_GT(measured.latencyMs, expected.latencyMs * 0.6)
            << action.label();
        EXPECT_LT(measured.latencyMs, expected.latencyMs * 1.6)
            << action.label();
        EXPECT_GT(measured.energyJ, expected.energyJ * 0.4)
            << action.label();
        EXPECT_LT(measured.energyJ, expected.energyJ * 2.5)
            << action.label();
    }
}

TEST_P(SimProperties, InterferenceNeverSpeedsUpLocalExecution)
{
    const InferenceSimulator sim = makeSim();
    const dnn::Network &net = network();
    env::EnvState hog;
    hog.coCpuUtil = 0.7;
    hog.coMemUtil = 0.6;
    hog.thermalFactor = 0.9;
    for (const auto &action : core::buildActionSpace(sim)) {
        const Outcome clean = sim.expected(net, action, env::EnvState{});
        if (!clean.feasible) {
            continue;
        }
        const Outcome contended = sim.expected(net, action, hog);
        if (action.place == TargetPlace::Local) {
            EXPECT_GE(contended.latencyMs + 1e-9, clean.latencyMs)
                << action.label();
        } else {
            // Remote compute and transfer are untouched by on-device
            // interference (energy too, since the co-runner's draw is
            // not attributed to the inference).
            EXPECT_NEAR(contended.latencyMs, clean.latencyMs, 1e-9)
                << action.label();
        }
    }
}

TEST_P(SimProperties, WeakSignalOnlyAffectsTheMatchingLink)
{
    const InferenceSimulator sim = makeSim();
    const dnn::Network &net = network();
    env::EnvState weak_wlan;
    weak_wlan.rssiWlanDbm = -88.0;
    env::EnvState weak_p2p;
    weak_p2p.rssiP2pDbm = -88.0;
    for (const auto &action : core::buildActionSpace(sim)) {
        const Outcome clean = sim.expected(net, action, env::EnvState{});
        if (!clean.feasible) {
            continue;
        }
        const Outcome w = sim.expected(net, action, weak_wlan);
        const Outcome p = sim.expected(net, action, weak_p2p);
        switch (action.place) {
          case TargetPlace::Local:
            EXPECT_NEAR(w.latencyMs, clean.latencyMs, 1e-9);
            EXPECT_NEAR(p.latencyMs, clean.latencyMs, 1e-9);
            break;
          case TargetPlace::Cloud:
            EXPECT_GT(w.latencyMs, clean.latencyMs);
            EXPECT_NEAR(p.latencyMs, clean.latencyMs, 1e-9);
            break;
          case TargetPlace::ConnectedEdge:
            EXPECT_NEAR(w.latencyMs, clean.latencyMs, 1e-9);
            EXPECT_GT(p.latencyMs, clean.latencyMs);
            break;
        }
    }
}

TEST_P(SimProperties, QuantizationNeverSlowsASupportingProcessor)
{
    const InferenceSimulator sim = makeSim();
    const dnn::Network &net = network();
    if (!net.supportedOnCoProcessors()) {
        GTEST_SKIP() << "recurrent network";
    }
    const env::EnvState env;
    const platform::Device &device = sim.localDevice();
    // CPU INT8 vs FP32 at the same step.
    for (std::size_t vf = 0; vf < device.cpu().numVfSteps(); vf += 4) {
        const Outcome fp32 = sim.expected(
            net,
            ExecutionTarget{TargetPlace::Local,
                            platform::ProcKind::MobileCpu, vf,
                            dnn::Precision::FP32},
            env);
        const Outcome int8 = sim.expected(
            net,
            ExecutionTarget{TargetPlace::Local,
                            platform::ProcKind::MobileCpu, vf,
                            dnn::Precision::INT8},
            env);
        EXPECT_LT(int8.latencyMs, fp32.latencyMs) << "vf " << vf;
        EXPECT_LT(int8.energyJ, fp32.energyJ) << "vf " << vf;
    }
}

TEST_P(SimProperties, PartitionTransferShrinksWithDepth)
{
    const InferenceSimulator sim = makeSim();
    const dnn::Network &net = network();
    if (!net.supportedOnCoProcessors() && net.numRc() > 0) {
        GTEST_SKIP() << "recurrent network";
    }
    const env::EnvState env;
    double previous_tx = 1e300;
    // Activation footprints decay with depth, so uplink time at the
    // split shrinks monotonically across quartile split points.
    for (double fraction : {0.25, 0.5, 0.75}) {
        PartitionSpec spec;
        spec.splitLayer = static_cast<std::size_t>(
            fraction * static_cast<double>(net.layers().size()));
        if (spec.splitLayer == 0) {
            continue;
        }
        spec.localProc = platform::ProcKind::MobileCpu;
        spec.vfIndex = sim.localDevice().cpu().maxVfIndex();
        const Outcome o = sim.expectedPartitioned(net, spec, env);
        ASSERT_TRUE(o.feasible);
        EXPECT_LT(o.txMs, previous_tx) << fraction;
        previous_tx = o.txMs;
    }
}

// ---------------------------------------------------------------------
// Seeded random-config properties: instead of sweeping hand-picked
// corners, draw N plausible (environment, fault, retry, target)
// configurations from a fixed master seed and check the invariants
// that must hold for every one of them — with and without faults.
// A failing draw reproduces from the printed config seed alone.
// ---------------------------------------------------------------------

constexpr int kRandomConfigs = 60;
constexpr std::uint64_t kPropertySeed = 0x5eedf00dULL;

/** One randomly drawn evaluation configuration. */
struct RandomConfig {
    env::EnvState env;
    fault::RetryPolicy retry;
    double accuracyTargetPct = 0.0;
};

RandomConfig
drawConfig(Rng &rng, bool with_faults)
{
    RandomConfig config;
    config.env.coCpuUtil = rng.uniform();
    config.env.coMemUtil = rng.uniform();
    config.env.rssiWlanDbm = rng.uniform(-95.0, -40.0);
    config.env.rssiP2pDbm = rng.uniform(-95.0, -40.0);
    config.env.thermalFactor = rng.uniform(0.6, 1.0);
    config.accuracyTargetPct = rng.uniform(0.0, 90.0);
    config.retry.timeoutMs = rng.uniform(50.0, 500.0);
    config.retry.maxRetries = static_cast<int>(rng.uniformInt(4));
    config.retry.backoffBaseMs = rng.uniform(5.0, 50.0);
    if (with_faults) {
        config.env.fault.wlanBlackout = rng.bernoulli(0.3);
        config.env.fault.p2pBlackout = rng.bernoulli(0.3);
        config.env.fault.cloudDown = rng.bernoulli(0.2);
        config.env.fault.cloudSlowdown = rng.uniform(1.0, 20.0);
        config.env.fault.transferDropProb = rng.uniform(0.0, 0.8);
        config.env.fault.localThrottleFactor = rng.uniform(0.6, 1.0);
    }
    return config;
}

class RandomizedSimProperties : public ::testing::TestWithParam<bool> {};

TEST_P(RandomizedSimProperties, FaultOutcomesStayPhysical)
{
    const bool with_faults = GetParam();
    const InferenceSimulator sim = InferenceSimulator::makeDefault(
        platform::makeMi8Pro());
    const auto actions = core::buildActionSpace(sim);
    const auto &zoo = dnn::modelZoo();
    Rng rng(kPropertySeed + (with_faults ? 1 : 0));

    for (int draw = 0; draw < kRandomConfigs; ++draw) {
        const RandomConfig config = drawConfig(rng, with_faults);
        const dnn::Network &net =
            zoo[static_cast<std::size_t>(rng.uniformInt(zoo.size()))];
        const ExecutionTarget target =
            actions[static_cast<std::size_t>(rng.uniformInt(
                actions.size()))];
        Rng run_rng(rng.next());

        const FaultOutcome result = sim.runWithFaults(
            net, target, config.env, config.retry,
            config.accuracyTargetPct, run_rng);
        const std::string label = "draw " + std::to_string(draw) + ": "
            + net.name() + " on " + target.label();

        // Bookkeeping invariants.
        EXPECT_LE(result.attempts, config.retry.maxAttempts()) << label;
        EXPECT_LE(result.timeouts + result.drops, result.attempts)
            << label;
        EXPECT_GE(result.wastedEnergyJ, 0.0) << label;
        EXPECT_GE(result.wastedMs, 0.0) << label;
        if (result.fellBack) {
            EXPECT_EQ(result.executedTarget.place, TargetPlace::Local)
                << label;
        }

        // Physicality of whatever was delivered.
        if (result.outcome.feasible) {
            EXPECT_GT(result.outcome.energyJ, 0.0) << label;
            EXPECT_GT(result.outcome.latencyMs, 0.0) << label;
            EXPECT_GE(result.outcome.energyJ,
                      result.wastedEnergyJ - 1e-12)
                << label;
            EXPECT_GE(result.outcome.latencyMs, result.wastedMs - 1e-9)
                << label;
            const double ppw = 1.0 / result.outcome.energyJ;
            EXPECT_TRUE(std::isfinite(ppw)) << label;
        } else {
            // Only a locally infeasible pick can pass through: remote
            // failures always deliver via the forced local fallback.
            EXPECT_FALSE(result.fellBack) << label;
        }

        // Determinism: re-running the identical draw reproduces the
        // outcome bit for bit.
        Rng replay_rng(run_rng);
        Rng replay_rng2(run_rng);
        const FaultOutcome a = sim.runWithFaults(
            net, target, config.env, config.retry,
            config.accuracyTargetPct, replay_rng);
        const FaultOutcome b = sim.runWithFaults(
            net, target, config.env, config.retry,
            config.accuracyTargetPct, replay_rng2);
        EXPECT_DOUBLE_EQ(a.outcome.energyJ, b.outcome.energyJ) << label;
        EXPECT_DOUBLE_EQ(a.outcome.latencyMs, b.outcome.latencyMs)
            << label;
        EXPECT_EQ(a.attempts, b.attempts) << label;
    }
}

TEST_P(RandomizedSimProperties, FallbackTargetIsAlwaysFeasible)
{
    const bool with_faults = GetParam();
    const InferenceSimulator sim = InferenceSimulator::makeDefault(
        platform::makeMi8Pro());
    const auto &zoo = dnn::modelZoo();
    Rng rng(kPropertySeed + 100 + (with_faults ? 1 : 0));

    for (int draw = 0; draw < kRandomConfigs; ++draw) {
        const RandomConfig config = drawConfig(rng, with_faults);
        const dnn::Network &net =
            zoo[static_cast<std::size_t>(rng.uniformInt(zoo.size()))];
        const ExecutionTarget fallback = sim.bestLocalTarget(
            net, config.env, config.accuracyTargetPct);
        EXPECT_EQ(fallback.place, TargetPlace::Local);
        const Outcome outcome = sim.expected(net, fallback, config.env);
        EXPECT_TRUE(outcome.feasible)
            << "draw " << draw << ": " << net.name();
        EXPECT_GT(outcome.energyJ, 0.0);
    }
}

TEST_P(RandomizedSimProperties, RemoteLatencyIsMonotoneInPayloadSize)
{
    const bool with_faults = GetParam();
    const InferenceSimulator sim = InferenceSimulator::makeDefault(
        platform::makeMi8Pro());
    Rng rng(kPropertySeed + 200 + (with_faults ? 1 : 0));

    for (int draw = 0; draw < kRandomConfigs / 4; ++draw) {
        const RandomConfig config = drawConfig(rng, with_faults);
        // Three synthetic clones differing only in input payload.
        dnn::SyntheticSpec spec = dnn::randomSpec(rng);
        spec.rcLayers = 0; // keep the network remote-capable
        double previous_latency = 0.0;
        for (const std::uint64_t payload :
             {std::uint64_t{50} * 1024, std::uint64_t{200} * 1024,
              std::uint64_t{800} * 1024}) {
            dnn::SyntheticSpec sized = spec;
            sized.name = spec.name + "-" + std::to_string(payload);
            sized.inputBytes = payload;
            const dnn::Network net = dnn::synthesizeNetwork(sized);
            const Outcome o = sim.expected(
                net,
                ExecutionTarget{TargetPlace::Cloud,
                                platform::ProcKind::ServerGpu, 0,
                                dnn::Precision::FP32},
                config.env);
            ASSERT_TRUE(o.feasible);
            EXPECT_GT(o.latencyMs, previous_latency)
                << "draw " << draw << " payload " << payload;
            previous_latency = o.latencyMs;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(NoFaultsAndFaults, RandomizedSimProperties,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &info) {
                             return info.param ? "WithFaults"
                                               : "FaultFree";
                         });

std::vector<Combo>
allCombos()
{
    std::vector<Combo> combos;
    for (const std::string &phone : platform::phoneNames()) {
        for (const auto &net : dnn::modelZoo()) {
            combos.emplace_back(phone, net.name());
        }
    }
    return combos;
}

INSTANTIATE_TEST_SUITE_P(
    AllDevicesAllNetworks, SimProperties, ::testing::ValuesIn(allCombos()),
    [](const ::testing::TestParamInfo<Combo> &info) {
        std::string name = std::get<0>(info.param) + "_"
            + std::get<1>(info.param);
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c))) {
                c = '_';
            }
        }
        return name;
    });

} // namespace
} // namespace autoscale::sim
