/**
 * @file
 * Tests for the Eq. (5) reward: the three branches (accuracy failure,
 * QoS met, QoS violated), the alpha/beta weights, and the orderings the
 * learner relies on.
 */

#include <gtest/gtest.h>

#include "core/reward.h"
#include "dnn/model_zoo.h"

namespace autoscale::core {
namespace {

sim::InferenceRequest
request(double qosMs = 50.0, double accuracyTarget = 50.0)
{
    static const dnn::Network net = dnn::makeMobileNetV1();
    sim::InferenceRequest req;
    req.network = &net;
    req.qosMs = qosMs;
    req.accuracyTargetPct = accuracyTarget;
    return req;
}

sim::Outcome
outcome(double latencyMs, double energyJ, double accuracyPct)
{
    sim::Outcome o;
    o.feasible = true;
    o.latencyMs = latencyMs;
    o.energyJ = energyJ;
    o.estimatedEnergyJ = energyJ;
    o.accuracyPct = accuracyPct;
    return o;
}

TEST(Reward, AccuracyFailureBranch)
{
    // R = Raccuracy - 100 when the quality requirement is violated.
    const double r = computeReward(outcome(10.0, 0.02, 45.0), request());
    EXPECT_DOUBLE_EQ(r, 45.0 - 100.0);
}

TEST(Reward, InfeasibleIsTotalQualityFailure)
{
    sim::Outcome infeasible;
    infeasible.feasible = false;
    EXPECT_DOUBLE_EQ(computeReward(infeasible, request()), -100.0);
}

TEST(Reward, QosMetBranchIncludesLatencyBonus)
{
    // R = -E_mJ + alpha * L + beta * A.
    const double r = computeReward(outcome(20.0, 0.030, 70.0), request());
    EXPECT_NEAR(r, -30.0 + 0.1 * 20.0 + 0.1 * 70.0, 1e-12);
}

TEST(Reward, QosViolatedBranchDropsLatencyTerm)
{
    const double r = computeReward(outcome(80.0, 0.030, 70.0), request());
    EXPECT_NEAR(r, -30.0 + 0.1 * 70.0, 1e-12);
}

TEST(Reward, BoundaryLatencyCountsAsViolation)
{
    // Eq. (5) uses a strict "<" for the QoS constraint.
    const double at_qos = computeReward(outcome(50.0, 0.030, 70.0),
                                        request(50.0));
    EXPECT_NEAR(at_qos, -30.0 + 7.0, 1e-12);
}

TEST(Reward, CustomWeights)
{
    RewardConfig config;
    config.alpha = 0.5;
    config.beta = 0.2;
    const double r =
        computeReward(outcome(20.0, 0.030, 70.0), request(), config);
    EXPECT_NEAR(r, -30.0 + 0.5 * 20.0 + 0.2 * 70.0, 1e-12);
}

TEST(Reward, UsesEstimatedEnergyNotMeasured)
{
    // The runtime only has the Renergy estimate (Section IV-A).
    sim::Outcome o = outcome(20.0, 0.030, 70.0);
    o.energyJ = 0.999; // meter value differs
    o.estimatedEnergyJ = 0.030;
    const double r = computeReward(o, request());
    EXPECT_NEAR(r, -30.0 + 2.0 + 7.0, 1e-12);
}

TEST(Reward, LowerEnergyWinsWithinQos)
{
    const double cheap = computeReward(outcome(20.0, 0.010, 70.0),
                                       request());
    const double costly = computeReward(outcome(20.0, 0.050, 70.0),
                                        request());
    EXPECT_GT(cheap, costly);
}

TEST(Reward, SlowerButWithinQosEarnsTheDvfsBonus)
{
    // Within QoS, Eq. (5) rewards exhausting the latency headroom when
    // energy is equal — the incentive to drop the V/F step.
    const double slow = computeReward(outcome(45.0, 0.030, 70.0),
                                      request());
    const double fast = computeReward(outcome(10.0, 0.030, 70.0),
                                      request());
    EXPECT_GT(slow, fast);
}

TEST(Reward, AccuracyFailureLosesToTheBestAccurateAction)
{
    // Eq. (5) only has to ensure the argmax never lands on a
    // quality-failing action: the cheapest accurate option (cloud
    // offload is always available at tens of mJ) must outscore any
    // failure reward, which is at most -100 + best accuracy.
    const double failed = computeReward(outcome(10.0, 0.005, 40.0),
                                        request());
    const double best_accurate =
        computeReward(outcome(30.0, 0.030, 70.0), request());
    EXPECT_GT(best_accurate, failed);
}

TEST(Reward, ZeroAccuracyTargetDisablesTheConstraint)
{
    const double r = computeReward(outcome(20.0, 0.030, 45.0),
                                   request(50.0, 0.0));
    EXPECT_NEAR(r, -30.0 + 2.0 + 4.5, 1e-12);
}

} // namespace
} // namespace autoscale::core
