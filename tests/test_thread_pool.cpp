/** @file Unit tests for the work-stealing thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace autoscale {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> sum{0};
    std::vector<std::future<void>> futures;
    for (int i = 1; i <= 100; ++i) {
        futures.push_back(pool.submit([&sum, i] { sum += i; }));
    }
    for (auto &future : futures) {
        future.get();
    }
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1);
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran = true; }).get();
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ParallelForCoversEachIndexExactlyOnce)
{
    ThreadPool pool(3);
    std::mutex mutex;
    std::multiset<std::size_t> seen;
    pool.parallelFor(57, [&](std::size_t i) {
        std::lock_guard<std::mutex> lock(mutex);
        seen.insert(i);
    });
    EXPECT_EQ(seen.size(), 57u);
    for (std::size_t i = 0; i < 57; ++i) {
        EXPECT_EQ(seen.count(i), 1u) << "index " << i;
    }
}

TEST(ThreadPool, ParallelForZeroIsANoOp)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto future = pool.submit([] {
        throw std::runtime_error("task failed");
    });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsLowestFailingIndex)
{
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    try {
        pool.parallelFor(20, [&](std::size_t i) {
            if (i == 3 || i == 17) {
                throw std::runtime_error("boom " + std::to_string(i));
            }
            ++completed;
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &error) {
        // The surfaced error is always the lowest failing index, so
        // diagnostics do not depend on scheduling.
        EXPECT_STREQ(error.what(), "boom 3");
    }
    EXPECT_EQ(completed.load(), 18);
}

TEST(ThreadPool, SurvivesManyWavesOfWork)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    for (int wave = 0; wave < 10; ++wave) {
        pool.parallelFor(25, [&](std::size_t) { ++total; });
    }
    EXPECT_EQ(total.load(), 250);
}

TEST(ThreadPool, MoreThreadsThanTasks)
{
    ThreadPool pool(8);
    std::atomic<int> count{0};
    pool.parallelFor(2, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 2);
}

} // namespace
} // namespace autoscale
