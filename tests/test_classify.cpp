/**
 * @file
 * Tests for the classification-based predictors (Fig. 7's SVM and KNN):
 * the classifier backends and the scheduling policies on top.
 */

#include <gtest/gtest.h>

#include "baselines/classify.h"
#include "dnn/model_zoo.h"
#include "platform/device_zoo.h"
#include "util/rng.h"

namespace autoscale::baselines {
namespace {

sim::InferenceSimulator
mi8Sim()
{
    return sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
}

TEST(LinearSvm, SeparatesLinearlySeparableClasses)
{
    Rng rng(1);
    std::vector<Vector> x;
    std::vector<int> labels;
    for (int i = 0; i < 200; ++i) {
        const double a = rng.uniform(-1.0, 1.0);
        const double b = rng.uniform(-1.0, 1.0);
        x.push_back({a, b});
        labels.push_back(a + b > 0.0 ? 7 : 3); // arbitrary label ids
    }
    LinearSvmClassifier svm(1e-3, 40, 2);
    svm.fit(x, labels);
    int correct = 0;
    for (int i = 0; i < 200; ++i) {
        const double a = rng.uniform(-1.0, 1.0);
        const double b = rng.uniform(-1.0, 1.0);
        if (std::abs(a + b) < 0.2) {
            continue; // skip points near the margin
        }
        if (svm.predict({a, b}) == (a + b > 0.0 ? 7 : 3)) {
            ++correct;
        } else {
            --correct;
        }
    }
    EXPECT_GT(correct, 0);
}

TEST(LinearSvm, HandlesThreeClasses)
{
    Rng rng(3);
    std::vector<Vector> x;
    std::vector<int> labels;
    for (int i = 0; i < 300; ++i) {
        const int cls = static_cast<int>(rng.uniformInt(3));
        const double center = static_cast<double>(cls) * 2.0;
        x.push_back({rng.normal(center, 0.2)});
        labels.push_back(cls);
    }
    LinearSvmClassifier svm(1e-3, 40, 4);
    svm.fit(x, labels);
    EXPECT_EQ(svm.predict({0.0}), 0);
    EXPECT_EQ(svm.predict({4.0}), 2);
}

TEST(Knn, ExactOnTrainingPoints)
{
    KnnClassifier knn(1);
    const std::vector<Vector> x{{0.0}, {1.0}, {2.0}, {3.0}};
    const std::vector<int> labels{10, 20, 30, 40};
    knn.fit(x, labels);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(knn.predict(x[i]), labels[i]);
    }
}

TEST(Knn, MajorityVoteAmongNeighbors)
{
    KnnClassifier knn(3);
    const std::vector<Vector> x{{0.0}, {0.1}, {0.2}, {5.0}};
    const std::vector<int> labels{1, 1, 2, 9};
    knn.fit(x, labels);
    // Neighbors of 0.05 are {0.0, 0.1, 0.2} -> labels {1, 1, 2} -> 1.
    EXPECT_EQ(knn.predict({0.05}), 1);
    EXPECT_EQ(knn.predict({4.9}), 9);
}

TEST(Knn, KLargerThanDatasetStillWorks)
{
    KnnClassifier knn(50);
    knn.fit({{0.0}, {1.0}}, {5, 5});
    EXPECT_EQ(knn.predict({0.5}), 5);
}

class ClassifierPolicies : public ::testing::TestWithParam<const char *> {};

TEST_P(ClassifierPolicies, TrainedPolicyPredictsOracleActionsInCleanEnv)
{
    const sim::InferenceSimulator sim = mi8Sim();
    std::unique_ptr<ClassificationPolicy> policy;
    if (std::string(GetParam()) == "SVM") {
        policy = makeSvmPolicy(sim);
    } else {
        policy = makeKnnPolicy(sim);
    }
    EXPECT_EQ(policy->name(), GetParam());

    std::vector<const dnn::Network *> nets{
        &dnn::findModel("MobileNet v1"), &dnn::findModel("Inception v3"),
        &dnn::findModel("MobileBERT")};
    Rng rng(5);
    const TrainingSet data = generateTrainingSet(
        sim, nets, {env::ScenarioId::S1}, 30, rng);
    policy->train(data);

    // In the environment it was trained on, the classifier should
    // recover each network's dominant optimal action.
    OptOracle oracle(sim);
    int matches = 0;
    for (const dnn::Network *net : nets) {
        const sim::InferenceRequest request = sim::makeRequest(*net);
        const int predicted =
            policy->predictAction(request, env::EnvState{});
        const sim::ExecutionTarget opt =
            oracle.optimalTarget(request, env::EnvState{});
        const auto &actions = oracle.actions();
        if (actions[static_cast<std::size_t>(predicted)].category()
            == opt.category()) {
            ++matches;
        }
    }
    EXPECT_GE(matches, 2) << "classifier missed the trained optima";
}

TEST_P(ClassifierPolicies, DecisionsAreAlwaysExecutable)
{
    const sim::InferenceSimulator sim = mi8Sim();
    std::unique_ptr<ClassificationPolicy> policy;
    if (std::string(GetParam()) == "SVM") {
        policy = makeSvmPolicy(sim);
    } else {
        policy = makeKnnPolicy(sim);
    }
    std::vector<const dnn::Network *> nets{
        &dnn::findModel("MobileNet v2"), &dnn::findModel("MobileBERT")};
    Rng rng(6);
    policy->train(
        generateTrainingSet(sim, nets, {env::ScenarioId::S1}, 20, rng));

    // Even for MobileBERT (where a vision-trained class might name a
    // co-processor), the decision must be executable.
    for (const dnn::Network *net : nets) {
        const sim::InferenceRequest request = sim::makeRequest(*net);
        const Decision decision =
            policy->decide(request, env::EnvState{}, rng);
        EXPECT_TRUE(sim.isFeasible(*net, decision.target)) << net->name();
    }
}

INSTANTIATE_TEST_SUITE_P(Both, ClassifierPolicies,
                         ::testing::Values("SVM", "KNN"));

} // namespace
} // namespace autoscale::baselines
