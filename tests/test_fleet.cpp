/**
 * @file
 * Tests for fleet serving (DESIGN.md §15): fleet-of-1 equivalence to
 * the single-device loop, shard/jobs output invariance, contention
 * effects (edge saturation pushing marginal devices local), shared
 * brownout windows hitting every device in the same epoch, and the
 * visit-weighted federated Q-table merge.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "dnn/model_zoo.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "platform/device_zoo.h"
#include "serve/device_state.h"
#include "serve/fleet.h"
#include "serve/server.h"
#include "sim/simulator.h"

namespace autoscale::serve {
namespace {

const sim::InferenceSimulator &
testSim()
{
    static const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    return sim;
}

std::vector<const dnn::Network *>
allNetworks()
{
    std::vector<const dnn::Network *> networks;
    for (const dnn::Network &network : dnn::modelZoo()) {
        networks.push_back(&network);
    }
    return networks;
}

/** Small-but-real serve config at @p rateX times local capacity. */
ServeConfig
serveConfig(double rateX, std::int64_t requests)
{
    ServeConfig config;
    config.totalRequests = requests;
    config.trainRunsPerCombo = 5;
    config.seed = 11;
    const double nominal =
        nominalServiceMs(testSim(), allNetworks(), 50.0);
    config.arrival.ratePerSec = rateX * 1000.0 / nominal;
    return config;
}

void
expectStatsBitIdentical(const ServeStats &a, const ServeStats &b)
{
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.shedOverflow, b.shedOverflow);
    EXPECT_EQ(a.shedDeadline, b.shedDeadline);
    EXPECT_EQ(a.shedStale, b.shedStale);
    EXPECT_EQ(a.qosViolations, b.qosViolations);
    EXPECT_EQ(a.accuracyViolations, b.accuracyViolations);
    EXPECT_EQ(a.faultFallbacks, b.faultFallbacks);
    EXPECT_EQ(a.maxQueueDepth, b.maxQueueDepth);
    // Bitwise float equality: the fleet path must replay the exact
    // arithmetic, not approximate it.
    EXPECT_EQ(a.totalWaitMs, b.totalWaitMs);
    EXPECT_EQ(a.totalServiceMs, b.totalServiceMs);
    EXPECT_EQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.wastedEnergyJ, b.wastedEnergyJ);
    EXPECT_EQ(a.endClockMs, b.endClockMs);
    EXPECT_EQ(a.latenciesMs, b.latenciesMs);
    EXPECT_EQ(a.categoryCounts, b.categoryCounts);
    EXPECT_EQ(a.rngFingerprint, b.rngFingerprint);
}

TEST(Fleet, FleetOfOneMatchesRunServe)
{
    const ServeConfig config = serveConfig(1.5, 120);

    obs::TraceRecorder soloTrace(true);
    obs::MetricsRegistry soloMetrics;
    const ServeStats solo = runServe(
        testSim(), config, obs::ObsContext{&soloTrace, &soloMetrics});

    FleetConfig fleet;
    fleet.serve = config;
    fleet.devices = 1;
    obs::TraceRecorder fleetTrace(true);
    obs::MetricsRegistry fleetMetrics;
    const FleetStats stats = runFleet(
        testSim(), fleet, obs::ObsContext{&fleetTrace, &fleetMetrics});

    ASSERT_EQ(stats.devices.size(), 1u);
    expectStatsBitIdentical(solo, stats.devices[0]);

    // Metrics merge through a device-private registry must reproduce
    // the single-device dump byte for byte. (Traces differ only by the
    // deliberate fleet fields on each event.)
    std::ostringstream soloText;
    soloMetrics.writeText(soloText);
    std::ostringstream fleetText;
    fleetMetrics.writeText(fleetText);
    EXPECT_EQ(soloText.str(), fleetText.str());
    EXPECT_EQ(soloTrace.size(), fleetTrace.size());
}

TEST(Fleet, ShardAndJobsInvariance)
{
    FleetConfig fleet;
    fleet.serve = serveConfig(1.5, 40);
    fleet.devices = 12;
    fleet.qMode = QTableMode::Federated;
    fleet.federatedMergeEpochs = 2;
    fleet.collectQTables = true;
    fleet.infra.edgeCapacity = 1.0;
    fleet.infra.contention = 4.0;
    fleet.infra.brownoutPeriodMs = 1000.0;
    fleet.infra.brownoutDurationMs = 250.0;

    auto run = [&](int shards, int jobs) {
        FleetConfig config = fleet;
        config.shards = shards;
        config.jobs = jobs;
        obs::TraceRecorder trace(true);
        obs::MetricsRegistry metrics;
        const FleetStats stats = runFleet(
            testSim(), config, obs::ObsContext{&trace, &metrics});
        std::ostringstream traceText;
        trace.writeJsonl(traceText);
        std::ostringstream metricsText;
        metrics.writeText(metricsText);
        return std::make_tuple(stats.checksum, stats.qtableDump,
                               traceText.str(), metricsText.str(),
                               stats.epochs);
    };

    const auto base = run(1, 1);
    const auto sharded = run(4, 4);
    const auto odd = run(5, 2);
    EXPECT_EQ(base, sharded);
    EXPECT_EQ(base, odd);
}

TEST(Fleet, EdgeSaturationPushesMarginalDevicesLocal)
{
    FleetConfig fleet;
    // Below local capacity so the uncontended fleet serves comfortably;
    // any extra shedding in the tight fleet is the contention's doing.
    fleet.serve = serveConfig(0.6, 60);
    // A remote-only policy makes every served request want the shared
    // edge; saturation must inflate service, build queues, and trip the
    // degradation ladder onto the local fallback.
    fleet.serve.policyName = "connected-edge";
    fleet.devices = 8;

    FleetConfig tight = fleet;
    tight.infra.edgeCapacity = 1.0;
    tight.infra.contention = 8.0;

    FleetConfig loose = fleet;
    loose.infra.edgeCapacity = 64.0;
    loose.infra.contention = 1.0;

    const FleetStats contended = runFleet(testSim(), tight, {});
    const FleetStats uncontended = runFleet(testSim(), loose, {});

    EXPECT_GT(contended.maxEdgeQueueMs, 0.0);
    EXPECT_EQ(uncontended.maxEdgeQueueMs, 0.0);
    // Queue pressure under saturation shifts the admission share: more
    // requests get degraded onto the local device (or shed) than in
    // the uncontended fleet.
    EXPECT_GT(contended.totalDegraded() + contended.totalShed(),
              uncontended.totalDegraded() + uncontended.totalShed());
    // And the requests that do reach the edge pay the queue wait: mean
    // served latency inflates under saturation.
    double tightServiceMs = 0.0;
    std::int64_t tightServed = 0;
    double looseServiceMs = 0.0;
    std::int64_t looseServed = 0;
    for (const ServeStats &stats : contended.devices) {
        tightServiceMs += stats.totalServiceMs;
        tightServed += stats.served;
    }
    for (const ServeStats &stats : uncontended.devices) {
        looseServiceMs += stats.totalServiceMs;
        looseServed += stats.served;
    }
    ASSERT_GT(tightServed, 0);
    ASSERT_GT(looseServed, 0);
    EXPECT_GT(tightServiceMs / static_cast<double>(tightServed),
              looseServiceMs / static_cast<double>(looseServed));
}

TEST(Fleet, BrownoutHitsAllDevicesInTheSameEpoch)
{
    FleetConfig fleet;
    fleet.serve = serveConfig(0.8, 60);
    fleet.serve.policyName = "cloud";
    fleet.devices = 4;
    fleet.epochMs = 200.0;
    fleet.infra.brownoutPeriodMs = 400.0;
    fleet.infra.brownoutDurationMs = 200.0;
    fleet.infra.brownoutSlowdown = 4.0;

    obs::TraceRecorder trace(true);
    const FleetStats stats =
        runFleet(testSim(), fleet, obs::ObsContext{&trace, nullptr});
    EXPECT_GT(stats.brownoutEpochs, 0);
    EXPECT_GT(stats.brownoutWindows, 0);

    // Cloud-served (non-fallback) events within one epoch must agree on
    // the brownout flag: the window lives in fleet virtual time, not in
    // any per-device stream.
    std::map<long long, std::set<bool>> flagsByEpoch;
    std::map<long long, std::set<int>> brownoutDevices;
    for (const obs::DecisionEvent &event : trace.snapshot()) {
        if (event.serveOutcome != "served" || event.category != "Cloud"
            || event.faultFallback || !event.feasible) {
            continue;
        }
        ASSERT_GE(event.deviceId, 0);
        flagsByEpoch[event.fleetEpoch].insert(event.fleetBrownout);
        if (event.fleetBrownout) {
            brownoutDevices[event.fleetEpoch].insert(event.deviceId);
        }
    }
    ASSERT_FALSE(flagsByEpoch.empty());
    for (const auto &[epoch, flags] : flagsByEpoch) {
        EXPECT_EQ(flags.size(), 1u)
            << "brownout flag split within epoch " << epoch;
    }
    // At least one brownout epoch touched several devices at once.
    std::size_t widest = 0;
    for (const auto &[epoch, devices] : brownoutDevices) {
        widest = std::max(widest, devices.size());
    }
    EXPECT_GE(widest, 2u);
}

TEST(Fleet, FederatedMergeWithZeroVisitPeersIsANoOp)
{
    const sim::InferenceSimulator &sim = testSim();
    core::AutoScaleScheduler trained(sim, {}, 1);
    core::AutoScaleScheduler idleB(sim, {}, 2);
    core::AutoScaleScheduler idleC(sim, {}, 3);

    // Give the trained peer real experience at a few cells.
    const int numActions = trained.agent().table().numActions();
    for (int step = 0; step < 200; ++step) {
        const int state = step % 7;
        const int action = step % numActions;
        trained.mutableAgent().update(state, action, 0.25 * step, state);
    }
    const core::QTable before = trained.agent().table();
    const core::QTable beforeB = idleB.agent().table();

    mergeQTablesVisitWeighted({&trained, &idleB, &idleC});

    const core::QTable &after = trained.agent().table();
    const core::QTable &afterB = idleB.agent().table();
    const int numStates = before.numStates();
    for (int s = 0; s < numStates; ++s) {
        for (int a = 0; a < numActions; ++a) {
            // Zero-visit peers contribute nothing: the trained table is
            // bitwise untouched everywhere.
            EXPECT_EQ(before.at(s, a), after.at(s, a))
                << "trained table perturbed at (" << s << "," << a << ")";
            if (trained.agent().visitCount(s, a) > 0) {
                // Visited cells propagate the trained value to peers.
                EXPECT_EQ(afterB.at(s, a), before.at(s, a));
            } else {
                // Unvisited cells leave peers untouched.
                EXPECT_EQ(afterB.at(s, a), beforeB.at(s, a));
            }
        }
    }
}

TEST(Fleet, ChurnIsShardInvariantAndCountsLoss)
{
    // DESIGN.md §17: churn draws are pure functions of
    // (masterSeed, deviceIndex, epoch), so crash/leave/join schedules —
    // and every byte they influence — must not move when the fleet is
    // re-sharded.
    FleetConfig fleet;
    fleet.serve = serveConfig(1.5, 150);
    fleet.devices = 8;
    fleet.qMode = QTableMode::Shared;
    fleet.collectQTables = true;
    fleet.churn.crashProb = 0.10;
    fleet.churn.leaveProb = 0.05;
    fleet.churn.downEpochs = 2;
    fleet.churn.initialDevices = 3;
    fleet.churn.joinEveryEpochs = 1;
    fleet.infra.outagePeriodMs = 1000.0;
    fleet.infra.outageDurationMs = 250.0;

    auto run = [&](int shards, int jobs) {
        FleetConfig config = fleet;
        config.shards = shards;
        config.jobs = jobs;
        obs::TraceRecorder trace(true);
        obs::MetricsRegistry metrics;
        const FleetStats stats = runFleet(
            testSim(), config, obs::ObsContext{&trace, &metrics});
        std::ostringstream traceText;
        trace.writeJsonl(traceText);
        std::ostringstream metricsText;
        metrics.writeText(metricsText);
        return std::make_tuple(stats.checksum, stats.qtableDump,
                               traceText.str(), metricsText.str(),
                               stats.epochs, stats.churnCrashes,
                               stats.churnLeaves, stats.churnRejoins,
                               stats.totalShedChurn());
    };

    const auto base = run(1, 1);
    const auto sharded = run(4, 4);
    const auto odd = run(5, 2);
    EXPECT_EQ(base, sharded);
    EXPECT_EQ(base, odd);

    // The schedule above is violent enough that the run must actually
    // exercise churn: devices crash or leave, go offline, lose work.
    const FleetStats probeStats = [&] {
        FleetConfig config = fleet;
        return runFleet(testSim(), config, {});
    }();
    EXPECT_GT(probeStats.churnCrashes + probeStats.churnLeaves, 0);
    EXPECT_GT(probeStats.offlineDeviceEpochs, 0);
    EXPECT_GT(probeStats.totalShedChurn(), 0);
    EXPECT_GT(probeStats.churnJoins, 0);
    EXPECT_GT(probeStats.outageEpochs, 0);
    // Conservation: every arrival is accounted for — served, shed by
    // QoS machinery, or lost to churn. (totalShed() deliberately
    // excludes churn so the classic "shed" row keeps its meaning.)
    EXPECT_EQ(probeStats.totalArrivals(),
              probeStats.totalServed() + probeStats.totalShed()
                  + probeStats.totalShedChurn());
}

TEST(Fleet, HaltThenResumeMatchesUninterruptedByteForByte)
{
    // Checkpoint-verified deterministic replay (fleet_checkpoint.h):
    // crash at an epoch barrier (simulated via haltAfterEpochs), resume
    // from the manifest, and the completed run's trace, metrics, and
    // Q-tables must equal the uninterrupted run's byte for byte.
    const char *path = "fleet_unit.ckpt";
    std::remove(path);
    std::remove("fleet_unit.ckpt.prev");

    FleetConfig fleet;
    fleet.serve = serveConfig(2.0, 200);
    fleet.devices = 4;
    fleet.qMode = QTableMode::Shared;
    fleet.collectQTables = true;
    fleet.churn.crashProb = 0.08;
    fleet.churn.downEpochs = 2;

    auto run = [&](bool checkpoint, bool resume, int haltAfter) {
        FleetConfig config = fleet;
        if (checkpoint) {
            config.serve.checkpointPath = path;
        }
        config.serve.resume = resume;
        config.haltAfterEpochs = haltAfter;
        obs::TraceRecorder trace(true);
        obs::MetricsRegistry metrics;
        const FleetStats stats = runFleet(
            testSim(), config, obs::ObsContext{&trace, &metrics});
        std::ostringstream traceText;
        trace.writeJsonl(traceText);
        std::ostringstream metricsText;
        metrics.writeText(metricsText);
        return std::make_tuple(stats, traceText.str(), metricsText.str());
    };

    const auto [baseStats, baseTrace, baseMetrics] = run(false, false, 0);
    ASSERT_GT(baseStats.epochs, 3);

    const auto [haltStats, haltTrace, haltMetrics] = run(true, false, 2);
    EXPECT_TRUE(haltStats.halted);
    EXPECT_EQ(haltStats.epochs, 2);
    EXPECT_GT(haltStats.checkpointsWritten, 0);
    // A halted run exports nothing (the simulated process died).
    EXPECT_TRUE(haltTrace.empty());

    const auto [resStats, resTrace, resMetrics] = run(true, true, 0);
    EXPECT_TRUE(resStats.resumed);
    EXPECT_EQ(resStats.resumeEpoch, 1);
    EXPECT_FALSE(resStats.halted);
    EXPECT_EQ(resStats.checksum, baseStats.checksum);
    EXPECT_EQ(resStats.qtableDump, baseStats.qtableDump);
    EXPECT_EQ(resStats.epochs, baseStats.epochs);
    EXPECT_EQ(resTrace, baseTrace);
    EXPECT_EQ(resMetrics, baseMetrics);

    std::remove(path);
    std::remove("fleet_unit.ckpt.prev");
}

TEST(Fleet, MergedQTableSnapshotEqualsInPlaceMerge)
{
    const sim::InferenceSimulator &sim = testSim();
    core::AutoScaleScheduler a(sim, {}, 1);
    core::AutoScaleScheduler b(sim, {}, 2);
    const int numActions = a.agent().table().numActions();
    for (int step = 0; step < 150; ++step) {
        a.mutableAgent().update(step % 5, step % numActions,
                                0.5 * step, step % 5);
        b.mutableAgent().update(step % 9, (step + 1) % numActions,
                                -0.25 * step, step % 9);
    }

    // The snapshot is computed first (it must not mutate anything),
    // then compared against the authoritative in-place merge.
    const core::QTable beforeA = a.agent().table();
    const core::QTable snapshot = mergedQTableSnapshot({&a, &b});
    const int numStates = beforeA.numStates();
    for (int s = 0; s < numStates; ++s) {
        for (int act = 0; act < numActions; ++act) {
            ASSERT_EQ(a.agent().table().at(s, act), beforeA.at(s, act))
                << "snapshot mutated a source table";
        }
    }
    mergeQTablesVisitWeighted({&a, &b});
    for (int s = 0; s < numStates; ++s) {
        for (int act = 0; act < numActions; ++act) {
            EXPECT_EQ(snapshot.at(s, act), a.agent().table().at(s, act))
                << "snapshot diverges from merge at (" << s << ","
                << act << ")";
        }
    }
}

// ---------------------------------------------------------------------
// Compact device representation (DESIGN.md §18): the shared-plan /
// contiguous-DeviceState / pooled-metrics / per-shard-trace layout is a
// memory layout change only. These tests pin every exported byte equal
// to the legacy per-device construction.
// ---------------------------------------------------------------------

std::string
fileBytes(const char *path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    return bytes.str();
}

TEST(FleetCompact, MatchesLegacyRepresentationByteForByte)
{
    // Full parity matrix: every Q-table mode, with and without churn,
    // compact at shard counts 1 and 4 against the legacy layout. The
    // tuple covers the checksum (RNG fingerprints + stats), Q-table
    // dumps, the JSONL trace, and the metrics dump — if any per-device
    // arithmetic, RNG draw, counter, or flush order moved, something
    // here changes.
    for (const QTableMode qMode :
         {QTableMode::PerDevice, QTableMode::Shared,
          QTableMode::Federated}) {
        for (const bool churn : {false, true}) {
            FleetConfig fleet;
            fleet.serve = serveConfig(1.5, 30);
            fleet.devices = 6;
            fleet.qMode = qMode;
            fleet.federatedMergeEpochs = 2;
            fleet.collectQTables = true;
            fleet.infra.edgeCapacity = 1.0;
            fleet.infra.contention = 4.0;
            fleet.infra.brownoutPeriodMs = 1000.0;
            fleet.infra.brownoutDurationMs = 250.0;
            if (churn) {
                fleet.churn.crashProb = 0.10;
                fleet.churn.leaveProb = 0.05;
                fleet.churn.downEpochs = 2;
                fleet.churn.initialDevices = 3;
                fleet.churn.joinEveryEpochs = 1;
            }

            auto run = [&](bool compact, int shards) {
                FleetConfig config = fleet;
                config.compactDevices = compact;
                config.shards = shards;
                obs::TraceRecorder trace(true);
                obs::MetricsRegistry metrics;
                const FleetStats stats = runFleet(
                    testSim(), config,
                    obs::ObsContext{&trace, &metrics});
                std::ostringstream traceText;
                trace.writeJsonl(traceText);
                std::ostringstream metricsText;
                metrics.writeText(metricsText);
                return std::make_tuple(stats.checksum, stats.qtableDump,
                                       traceText.str(),
                                       metricsText.str(), stats.epochs,
                                       stats.totalShedChurn());
            };

            const auto legacy = run(false, 1);
            EXPECT_EQ(legacy, run(true, 1))
                << qTableModeName(qMode) << " churn=" << churn
                << " shards=1";
            EXPECT_EQ(legacy, run(true, 4))
                << qTableModeName(qMode) << " churn=" << churn
                << " shards=4";
        }
    }
}

TEST(FleetCompact, CheckpointBytesMatchLegacy)
{
    // The fleet manifest digest deliberately excludes the
    // representation knob, so a halted compact run's manifest must be
    // byte-identical to the legacy run's — and resuming a legacy
    // manifest under the compact layout must replay to the
    // uninterrupted run's exact outputs.
    const char *path = "fleet_compact_unit.ckpt";
    const char *prev = "fleet_compact_unit.ckpt.prev";

    FleetConfig fleet;
    fleet.serve = serveConfig(2.0, 200);
    fleet.devices = 4;
    fleet.qMode = QTableMode::Shared;
    fleet.collectQTables = true;
    fleet.churn.crashProb = 0.08;
    fleet.churn.downEpochs = 2;

    auto haltedManifest = [&](bool compact) {
        std::remove(path);
        std::remove(prev);
        FleetConfig config = fleet;
        config.compactDevices = compact;
        config.serve.checkpointPath = path;
        config.haltAfterEpochs = 2;
        const FleetStats stats = runFleet(testSim(), config, {});
        EXPECT_TRUE(stats.halted);
        EXPECT_GT(stats.checkpointsWritten, 0);
        return fileBytes(path);
    };

    const std::string legacyBytes = haltedManifest(false);
    ASSERT_FALSE(legacyBytes.empty());
    const std::string compactBytes = haltedManifest(true);
    EXPECT_EQ(compactBytes, legacyBytes);

    auto finish = [&](bool compact, bool resume) {
        FleetConfig config = fleet;
        config.compactDevices = compact;
        if (resume) {
            config.serve.checkpointPath = path;
            config.serve.resume = true;
        }
        obs::TraceRecorder trace(true);
        obs::MetricsRegistry metrics;
        const FleetStats stats = runFleet(
            testSim(), config, obs::ObsContext{&trace, &metrics});
        std::ostringstream traceText;
        trace.writeJsonl(traceText);
        std::ostringstream metricsText;
        metrics.writeText(metricsText);
        EXPECT_EQ(stats.resumed, resume);
        return std::make_tuple(stats.checksum, stats.qtableDump,
                               traceText.str(), metricsText.str());
    };

    // fileBytes() above proved the on-disk manifest is the legacy one;
    // a compact resume from it must finish the legacy-uninterrupted
    // trajectory byte for byte.
    const auto uninterrupted = finish(false, false);
    EXPECT_EQ(finish(true, true), uninterrupted);

    std::remove(path);
    std::remove(prev);
}

TEST(FleetCompact, AggregateStatsFoldPreservesTotalsAndChecksum)
{
    // aggregateStats drops the per-device ServeStats vector (a
    // million-device run cannot afford it) but must not change any
    // total or the cross-shard checksum: the fold is the same
    // arithmetic in the same device order.
    FleetConfig fleet;
    fleet.serve = serveConfig(1.5, 40);
    fleet.devices = 6;
    fleet.churn.crashProb = 0.10;
    fleet.churn.downEpochs = 2;

    FleetConfig folded = fleet;
    folded.aggregateStats = true;

    const FleetStats full = runFleet(testSim(), fleet, {});
    const FleetStats agg = runFleet(testSim(), folded, {});

    ASSERT_EQ(full.devices.size(), 6u);
    EXPECT_TRUE(agg.devices.empty());
    EXPECT_EQ(agg.checksum, full.checksum);
    EXPECT_EQ(agg.totalArrivals(), full.totalArrivals());
    EXPECT_EQ(agg.totalServed(), full.totalServed());
    EXPECT_EQ(agg.totalShed(), full.totalShed());
    EXPECT_EQ(agg.totalShedChurn(), full.totalShedChurn());
    EXPECT_EQ(agg.totalDegraded(), full.totalDegraded());
    EXPECT_EQ(agg.totalQosViolations(), full.totalQosViolations());
    EXPECT_EQ(agg.totalEnergyJ(), full.totalEnergyJ());
    EXPECT_EQ(agg.totalWastedEnergyJ(), full.totalWastedEnergyJ());
    EXPECT_EQ(agg.endClockMs, full.endClockMs);
}

TEST(FleetCompact, HundredThousandDeviceSmokeStaysUnderMemoryBudget)
{
    // The compact record itself must stay flat: one cache-friendly
    // struct, no growth past the envelope DESIGN.md §18 promises.
    EXPECT_LE(sizeof(DeviceState), 2048u);

    // 100k fixed-policy devices in-process — the CI-scale end of the
    // envelope (bench_fleet gates the same bytes/device number at a
    // million devices). Measured ~2.2 KB/device; the 4 KiB ceiling
    // leaves headroom for allocator noise, not for regressions.
    FleetConfig fleet;
    fleet.serve.policyName = "connected-edge";
    fleet.serve.trainRunsPerCombo = 0;
    fleet.serve.totalRequests = 2;
    fleet.serve.arrival.ratePerSec = 50.0;
    fleet.devices = 100000;
    fleet.aggregateStats = true;
    fleet.reportMemory = true;

    const FleetStats stats = runFleet(testSim(), fleet, {});
    EXPECT_EQ(stats.totalArrivals(), 200000);
    EXPECT_EQ(stats.totalArrivals(),
              stats.totalServed() + stats.totalShed());
    EXPECT_TRUE(stats.devices.empty());
    ASSERT_GT(stats.peakRssBytes, 0u);
    ASSERT_GT(stats.bytesPerDevice, 0.0);
    EXPECT_LT(stats.bytesPerDevice, 4096.0);
}

} // namespace
} // namespace autoscale::serve
