/**
 * @file
 * Tests for the device model and the Table II fleet: processor
 * presence, V/F step counts, top frequencies, and peak powers.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "platform/device_zoo.h"

namespace autoscale::platform {
namespace {

// Table II: name, cpu steps, cpu fmax, cpu peak W, gpu steps, gpu fmax,
// gpu peak W, has dsp.
using TableIIRow =
    std::tuple<std::string, int, double, double, int, double, double, bool>;

class DeviceTableII : public ::testing::TestWithParam<TableIIRow> {};

TEST_P(DeviceTableII, MatchesPaperSpecification)
{
    const auto &[name, cpu_steps, cpu_fmax, cpu_w, gpu_steps, gpu_fmax,
                 gpu_w, has_dsp] = GetParam();
    const Device device = makePhone(name);
    EXPECT_EQ(device.name(), name);

    EXPECT_EQ(static_cast<int>(device.cpu().numVfSteps()), cpu_steps);
    EXPECT_DOUBLE_EQ(device.cpu().freqGhz(device.cpu().maxVfIndex()),
                     cpu_fmax);
    EXPECT_DOUBLE_EQ(device.cpu().busyPowerW(device.cpu().maxVfIndex()),
                     cpu_w);

    ASSERT_TRUE(device.hasGpu());
    EXPECT_EQ(static_cast<int>(device.gpu().numVfSteps()), gpu_steps);
    EXPECT_DOUBLE_EQ(device.gpu().freqGhz(device.gpu().maxVfIndex()),
                     gpu_fmax);
    EXPECT_DOUBLE_EQ(device.gpu().busyPowerW(device.gpu().maxVfIndex()),
                     gpu_w);

    EXPECT_EQ(device.hasDsp(), has_dsp);
}

INSTANTIATE_TEST_SUITE_P(
    TableII, DeviceTableII,
    ::testing::Values(
        TableIIRow{"Mi8Pro", 23, 2.8, 5.5, 7, 0.7, 2.8, true},
        TableIIRow{"Galaxy S10e", 21, 2.7, 5.6, 9, 0.7, 2.4, false},
        TableIIRow{"Moto X Force", 15, 1.9, 3.6, 6, 0.6, 2.0, false}));

TEST(DeviceZoo, TiersMatchSectionIII)
{
    EXPECT_EQ(makeMi8Pro().tier(), DeviceTier::HighEnd);
    EXPECT_EQ(makeGalaxyS10e().tier(), DeviceTier::HighEnd);
    EXPECT_EQ(makeMotoXForce().tier(), DeviceTier::MidEnd);
    EXPECT_EQ(makeGalaxyTabS6().tier(), DeviceTier::Tablet);
    EXPECT_EQ(makeCloudServer().tier(), DeviceTier::Server);
}

TEST(DeviceZoo, DspHasNoDvfs)
{
    // Section V-C: "We do not consider DVFS for DSP ... since DSP does
    // not support DVFS yet."
    const Device mi8 = makeMi8Pro();
    EXPECT_EQ(mi8.dsp().numVfSteps(), 1u);
    EXPECT_DOUBLE_EQ(mi8.dsp().busyPowerW(0), 1.8);
}

TEST(DeviceZoo, MidEndDramMatchesOverheadAnalysis)
{
    // Section VI-C cites "the 3 GB DRAM capacity of a typical mid-end
    // mobile device".
    EXPECT_EQ(makeMotoXForce().dramMB(), 3072);
}

TEST(DeviceZoo, CloudHasServerProcessors)
{
    const Device cloud = makeCloudServer();
    EXPECT_EQ(cloud.cpu().kind(), ProcKind::ServerCpu);
    EXPECT_EQ(cloud.cpu().numCores(), 40);
    ASSERT_TRUE(cloud.hasGpu());
    EXPECT_EQ(cloud.gpu().kind(), ProcKind::ServerGpu);
    EXPECT_FALSE(cloud.hasDsp());
}

TEST(DeviceZoo, TabletOutclassesPhonesAsConnectedEdge)
{
    // Section III: the tablet is "the higher-end device".
    const Device tab = makeGalaxyTabS6();
    const Device moto = makeMotoXForce();
    EXPECT_GT(tab.cpu().peakGflopsFp32(), moto.cpu().peakGflopsFp32());
    EXPECT_TRUE(tab.hasDsp());
}

TEST(Device, ProcessorLookup)
{
    const Device mi8 = makeMi8Pro();
    EXPECT_EQ(mi8.processor(ProcKind::MobileCpu), &mi8.cpu());
    EXPECT_EQ(mi8.processor(ProcKind::MobileGpu), &mi8.gpu());
    EXPECT_EQ(mi8.processor(ProcKind::MobileDsp), &mi8.dsp());
    EXPECT_EQ(mi8.processor(ProcKind::ServerGpu), nullptr);

    const Device s10e = makeGalaxyS10e();
    EXPECT_EQ(s10e.processor(ProcKind::MobileDsp), nullptr);
}

TEST(Device, ProcessorsListsAllPresent)
{
    EXPECT_EQ(makeMi8Pro().processors().size(), 3u);
    EXPECT_EQ(makeGalaxyS10e().processors().size(), 2u);
    EXPECT_EQ(makeMotoXForce().processors().size(), 2u);
}

TEST(DeviceZoo, PhoneNamesRoundTrip)
{
    for (const std::string &name : phoneNames()) {
        EXPECT_EQ(makePhone(name).name(), name);
    }
    EXPECT_EQ(phoneNames().size(), 3u);
}

TEST(Device, TierNames)
{
    EXPECT_STREQ(deviceTierName(DeviceTier::MidEnd), "mid-end");
    EXPECT_STREQ(deviceTierName(DeviceTier::Server), "server");
}

} // namespace
} // namespace autoscale::platform
