/**
 * @file
 * Tests for the augmented action space (Section V-C): exactly 66
 * actions on the Mi8Pro, the right knobs per processor, and uniqueness.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/action_space.h"
#include "dnn/model_zoo.h"
#include "platform/device_zoo.h"

namespace autoscale::core {
namespace {

using sim::ExecutionTarget;
using sim::InferenceSimulator;
using sim::TargetPlace;

// (phone, expected action count): Mi8Pro = 2*23 + 2*7 + 1 DSP + 2 cloud
// + 3 connected = 66, matching the paper's "~66 actions".
class ActionCount
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(ActionCount, MatchesDeviceKnobs)
{
    const auto &[phone, expected] = GetParam();
    const InferenceSimulator sim =
        InferenceSimulator::makeDefault(platform::makePhone(phone));
    EXPECT_EQ(static_cast<int>(buildActionSpace(sim).size()), expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllPhones, ActionCount,
    ::testing::Values(std::tuple<std::string, int>{"Mi8Pro", 66},
                      std::tuple<std::string, int>{"Galaxy S10e", 65},
                      std::tuple<std::string, int>{"Moto X Force", 47}));

TEST(ActionSpace, AllActionsAreUnique)
{
    const InferenceSimulator sim =
        InferenceSimulator::makeDefault(platform::makeMi8Pro());
    const auto actions = buildActionSpace(sim);
    std::set<std::string> labels;
    for (const auto &action : actions) {
        labels.insert(action.label());
    }
    EXPECT_EQ(labels.size(), actions.size());
}

TEST(ActionSpace, EveryActionFeasibleForVisionNetworks)
{
    const InferenceSimulator sim =
        InferenceSimulator::makeDefault(platform::makeMi8Pro());
    const dnn::Network net = dnn::makeInceptionV1();
    for (const auto &action : buildActionSpace(sim)) {
        EXPECT_TRUE(sim.isFeasible(net, action)) << action.label();
    }
}

TEST(ActionSpace, KnobsFollowSectionVC)
{
    const InferenceSimulator sim =
        InferenceSimulator::makeDefault(platform::makeMi8Pro());
    const auto actions = buildActionSpace(sim);

    int cpu_fp32 = 0;
    int cpu_int8 = 0;
    int gpu_fp32 = 0;
    int gpu_fp16 = 0;
    int dsp = 0;
    int cloud = 0;
    int connected = 0;
    for (const auto &action : actions) {
        if (action.place == TargetPlace::Cloud) {
            ++cloud;
            EXPECT_EQ(action.precision, dnn::Precision::FP32);
        } else if (action.place == TargetPlace::ConnectedEdge) {
            ++connected;
        } else if (action.proc == platform::ProcKind::MobileCpu) {
            (action.precision == dnn::Precision::FP32 ? cpu_fp32
                                                      : cpu_int8)++;
        } else if (action.proc == platform::ProcKind::MobileGpu) {
            (action.precision == dnn::Precision::FP32 ? gpu_fp32
                                                      : gpu_fp16)++;
        } else {
            ++dsp;
            EXPECT_EQ(action.precision, dnn::Precision::INT8);
        }
    }
    EXPECT_EQ(cpu_fp32, 23); // every CPU V/F step
    EXPECT_EQ(cpu_int8, 23);
    EXPECT_EQ(gpu_fp32, 7);
    EXPECT_EQ(gpu_fp16, 7);
    EXPECT_EQ(dsp, 1);       // no DSP DVFS
    EXPECT_EQ(cloud, 2);     // cloud CPU + GPU, FP32
    EXPECT_EQ(connected, 3); // connected CPU + GPU + DSP
}

TEST(ActionSpace, RemoteActionsUseTopFrequency)
{
    const InferenceSimulator sim =
        InferenceSimulator::makeDefault(platform::makeMi8Pro());
    for (const auto &action : buildActionSpace(sim)) {
        if (action.place == TargetPlace::Local) {
            continue;
        }
        const platform::Processor *proc =
            sim.deviceAt(action.place).processor(action.proc);
        ASSERT_NE(proc, nullptr);
        EXPECT_EQ(action.vfIndex, proc->maxVfIndex()) << action.label();
    }
}

TEST(ActionSpace, DesignSpaceMatchesPaperFootnote)
{
    // Footnote 8: "about 200,000 (3,072 states times ~66 actions)".
    const InferenceSimulator sim =
        InferenceSimulator::makeDefault(platform::makeMi8Pro());
    const std::size_t design_space = 3072 * buildActionSpace(sim).size();
    EXPECT_NEAR(static_cast<double>(design_space), 200000.0, 10000.0);
}

TEST(ActionSpace, FindEdgeCpuBaseline)
{
    const InferenceSimulator sim =
        InferenceSimulator::makeDefault(platform::makeMi8Pro());
    const auto actions = buildActionSpace(sim);
    const ActionId id = findEdgeCpuFp32Action(actions, sim);
    const ExecutionTarget &action = actions[static_cast<std::size_t>(id)];
    EXPECT_EQ(action.place, TargetPlace::Local);
    EXPECT_EQ(action.proc, platform::ProcKind::MobileCpu);
    EXPECT_EQ(action.precision, dnn::Precision::FP32);
    EXPECT_EQ(action.vfIndex, sim.localDevice().cpu().maxVfIndex());
}

TEST(ExecutionTarget, LabelsAndCategories)
{
    ExecutionTarget target{TargetPlace::Local,
                           platform::ProcKind::MobileDsp, 0,
                           dnn::Precision::INT8};
    EXPECT_EQ(target.category(), "Edge (DSP)");
    EXPECT_NE(target.label().find("DSP"), std::string::npos);

    ExecutionTarget cloud{TargetPlace::Cloud,
                          platform::ProcKind::ServerGpu, 0,
                          dnn::Precision::FP32};
    EXPECT_EQ(cloud.category(), "Cloud");

    ExecutionTarget conn{TargetPlace::ConnectedEdge,
                         platform::ProcKind::MobileCpu, 3,
                         dnn::Precision::FP32};
    EXPECT_EQ(conn.category(), "Connected Edge");
}

} // namespace
} // namespace autoscale::core
