/**
 * @file
 * Full-stack integration tests: trained AutoScale against Opt and the
 * baselines on realistic (network, scenario, device) mixes — small-
 * scale versions of the paper's headline claims that must hold in
 * every build.
 */

#include <gtest/gtest.h>

#include "baselines/fixed.h"
#include "baselines/oracle.h"
#include "dnn/model_zoo.h"
#include "harness/experiment.h"
#include "platform/device_zoo.h"

namespace autoscale::harness {
namespace {

/** Shared trained scheduler so the expensive training runs once. */
class IntegrationFixture : public ::testing::Test {
  protected:
    static void
    SetUpTestSuite()
    {
        sim_ = new sim::InferenceSimulator(
            sim::InferenceSimulator::makeDefault(platform::makeMi8Pro()));
        autoscale_ = makeAutoScalePolicy(*sim_, 1234).release();
        Rng rng(99);
        trainAutoScale(*autoscale_, *sim_, allZooNetworks(),
                       {env::ScenarioId::S1, env::ScenarioId::S2,
                        env::ScenarioId::S3, env::ScenarioId::S4},
                       150, rng);
        autoscale_->scheduler().setExploration(false);
    }

    static void
    TearDownTestSuite()
    {
        delete autoscale_;
        autoscale_ = nullptr;
        delete sim_;
        sim_ = nullptr;
    }

    static sim::InferenceSimulator *sim_;
    static AutoScalePolicy *autoscale_;
};

sim::InferenceSimulator *IntegrationFixture::sim_ = nullptr;
AutoScalePolicy *IntegrationFixture::autoscale_ = nullptr;

TEST_F(IntegrationFixture, AutoScaleApproachesOptInStaticEnvironments)
{
    EvalOptions options;
    options.runsPerCombo = 10;
    options.seed = 7;
    const RunStats stats = evaluatePolicy(
        *autoscale_, *sim_, allZooNetworks(),
        {env::ScenarioId::S1, env::ScenarioId::S2}, options);
    // Section VI-A: AutoScale's energy efficiency is within a few
    // percent of Opt; allow slack for this reduced training budget.
    EXPECT_GT(stats.ppw(), 0.60 * stats.optPpw());
    EXPECT_LT(stats.qosViolationRatio(),
              stats.optQosViolationRatio() + 0.25);
}

TEST_F(IntegrationFixture, AutoScaleBeatsEveryFixedBaseline)
{
    EvalOptions options;
    options.runsPerCombo = 8;
    options.seed = 8;
    options.compareOracle = false;
    const auto scenarios = std::vector<env::ScenarioId>{
        env::ScenarioId::S1, env::ScenarioId::S2, env::ScenarioId::S3,
        env::ScenarioId::S4};

    const RunStats as_stats = evaluatePolicy(
        *autoscale_, *sim_, allZooNetworks(), scenarios, options);

    auto cpu = baselines::makeEdgeCpuFp32Policy(*sim_);
    auto best = baselines::makeEdgeBestPolicy(*sim_);
    auto cloud = baselines::makeCloudPolicy(*sim_);
    auto connected = baselines::makeConnectedEdgePolicy(*sim_);

    const RunStats cpu_stats = evaluatePolicy(
        *cpu, *sim_, allZooNetworks(), scenarios, options);
    const RunStats best_stats = evaluatePolicy(
        *best, *sim_, allZooNetworks(), scenarios, options);
    const RunStats cloud_stats = evaluatePolicy(
        *cloud, *sim_, allZooNetworks(), scenarios, options);
    const RunStats conn_stats = evaluatePolicy(
        *connected, *sim_, allZooNetworks(), scenarios, options);

    // Fig. 9's ordering: AutoScale improves on every baseline, by far
    // the most over Edge (CPU FP32).
    EXPECT_GT(as_stats.ppw(), 4.0 * cpu_stats.ppw());
    EXPECT_GT(as_stats.ppw(), best_stats.ppw());
    EXPECT_GT(as_stats.ppw(), cloud_stats.ppw());
    EXPECT_GT(as_stats.ppw(), conn_stats.ppw());
}

TEST_F(IntegrationFixture, PredictionAccuracyIsHigh)
{
    EvalOptions options;
    options.runsPerCombo = 10;
    options.seed = 9;
    const RunStats stats = evaluatePolicy(
        *autoscale_, *sim_, allZooNetworks(), {env::ScenarioId::S1},
        options);
    // Fig. 13 reports 97.9% category-level agreement with Opt. Two of
    // the ten workloads sit in near-tie or state-aliased corners (e.g.
    // MobileNet v3 and SSD MobileNet v3 share a Table I state), so this
    // build demands a strong-but-looser agreement.
    EXPECT_GE(stats.predictionAccuracy(), 0.65);
    // Where it disagrees with Opt the energy gap must mostly be small.
    EXPECT_GE(stats.nearOptimalRatio(), 0.6);
}

TEST_F(IntegrationFixture, AdaptsToWeakSignal)
{
    // S4: cloud-leaning decisions must retreat from the cloud.
    EvalOptions options;
    options.runsPerCombo = 12;
    options.seed = 10;
    options.compareOracle = false;
    const RunStats weak = evaluatePolicy(
        *autoscale_, *sim_, allZooNetworks(), {env::ScenarioId::S4},
        options);
    const RunStats clean = evaluatePolicy(
        *autoscale_, *sim_, allZooNetworks(), {env::ScenarioId::S1},
        options);
    EXPECT_LT(weak.decisionShare("Cloud"),
              clean.decisionShare("Cloud") + 0.05);

    auto cloud = baselines::makeCloudPolicy(*sim_);
    const RunStats cloud_stats = evaluatePolicy(
        *cloud, *sim_, allZooNetworks(), {env::ScenarioId::S4}, options);
    EXPECT_GT(weak.ppw(), cloud_stats.ppw());
}

TEST(IntegrationMidEnd, MotoXForceReliesOnScalingOut)
{
    // Section III-A: the mid-end phone's SoC is too weak even for the
    // light NNs; the optimum is almost always off-device.
    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMotoXForce());
    baselines::OptOracle oracle(sim);
    int off_device = 0;
    for (const auto &net : dnn::modelZoo()) {
        const sim::ExecutionTarget target = oracle.optimalTarget(
            sim::makeRequest(net), env::EnvState{});
        if (target.place != sim::TargetPlace::Local) {
            ++off_device;
        }
    }
    EXPECT_GE(off_device, 7);
}

TEST(IntegrationStreaming, SustainedLoadDegradesButStillSchedules)
{
    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    auto autoscale = makeAutoScalePolicy(sim, 55);
    Rng rng(56);
    const auto vision = std::vector<const dnn::Network *>{
        &dnn::findModel("MobileNet v2"), &dnn::findModel("MobileNet v3")};
    trainAutoScale(*autoscale, sim, vision, {env::ScenarioId::S1}, 60,
                   rng, /*streaming=*/true);
    autoscale->scheduler().setExploration(false);

    EvalOptions options;
    options.runsPerCombo = 30;
    options.streaming = true;
    options.seed = 57;
    options.compareOracle = false;
    const RunStats stats = evaluatePolicy(
        *autoscale, sim, vision, {env::ScenarioId::S1}, options);
    // The 33.3 ms QoS is tighter, yet schedulable for the light NNs.
    EXPECT_LT(stats.qosViolationRatio(), 0.3);
}

} // namespace
} // namespace autoscale::harness
