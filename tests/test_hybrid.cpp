/**
 * @file
 * Tests for the partition-augmented HybridScheduler (the paper's
 * footnote 4 extension: layer-granularity partitioning applied on top
 * of AutoScale).
 */

#include <gtest/gtest.h>

#include "core/hybrid.h"
#include "dnn/model_zoo.h"
#include "harness/experiment.h"
#include "harness/hybrid_policy.h"
#include "platform/device_zoo.h"

namespace autoscale {
namespace {

sim::InferenceSimulator
mi8Sim()
{
    return sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
}

TEST(HybridActionSpace, AddsPartitionTemplates)
{
    const sim::InferenceSimulator sim = mi8Sim();
    const auto actions = core::buildHybridActionSpace(sim);
    // 66 whole-model actions + 3 fractions x {CPU, DSP} partitions.
    EXPECT_EQ(actions.size(), 66u + 6u);
    int partitions = 0;
    for (const auto &action : actions) {
        if (action.partitioned) {
            ++partitions;
            EXPECT_GT(action.splitFraction, 0.0);
            EXPECT_LT(action.splitFraction, 1.0);
            EXPECT_EQ(action.remotePlace, sim::TargetPlace::Cloud);
        }
    }
    EXPECT_EQ(partitions, 6);
}

TEST(HybridActionSpace, NoDspNoDspPartitions)
{
    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeGalaxyS10e());
    const auto actions = core::buildHybridActionSpace(sim);
    for (const auto &action : actions) {
        if (action.partitioned) {
            EXPECT_EQ(action.localProc, platform::ProcKind::MobileCpu);
        }
    }
}

TEST(HybridAction, LabelsAndCategories)
{
    core::HybridAction action;
    action.partitioned = true;
    action.splitFraction = 0.5;
    action.localProc = platform::ProcKind::MobileCpu;
    EXPECT_EQ(action.label(), "Split 50% CPU -> Cloud");
    EXPECT_EQ(action.category(), "Partitioned (Cloud)");
}

TEST(HybridAction, MaterializeScalesWithNetworkDepth)
{
    core::HybridAction action;
    action.partitioned = true;
    action.splitFraction = 0.5;
    const dnn::Network &small = dnn::findModel("MobileNet v1");
    const dnn::Network &large = dnn::findModel("Inception v3");
    const auto spec_small = core::materializePartition(action, small);
    const auto spec_large = core::materializePartition(action, large);
    EXPECT_EQ(spec_small.splitLayer, (small.layers().size() + 1) / 2);
    EXPECT_GT(spec_large.splitLayer, spec_small.splitLayer);
    EXPECT_LE(spec_large.splitLayer, large.layers().size());
}

TEST(HybridScheduler, ChooseExecuteFeedbackLoop)
{
    const sim::InferenceSimulator sim = mi8Sim();
    core::HybridScheduler scheduler(sim, core::SchedulerConfig{}, 1);
    Rng rng(2);
    const dnn::Network &net = dnn::findModel("ResNet 50");
    const sim::InferenceRequest request = sim::makeRequest(net);
    for (int i = 0; i < 50; ++i) {
        scheduler.choose(request, env::EnvState{});
        const sim::Outcome outcome =
            scheduler.execute(request, env::EnvState{}, rng);
        scheduler.feedback(outcome);
    }
    scheduler.finishEpisode();
    // Rewards were recorded and the agent saw updates.
    EXPECT_EQ(scheduler.agent().convergence().count(), 50);
}

TEST(HybridScheduler, PartitionedActionsAreExecutable)
{
    const sim::InferenceSimulator sim = mi8Sim();
    const dnn::Network &net = dnn::findModel("Inception v1");
    Rng rng(3);
    for (const auto &action : core::buildHybridActionSpace(sim)) {
        if (!action.partitioned) {
            continue;
        }
        sim::PartitionSpec spec =
            core::materializePartition(action, net);
        const platform::Processor *proc =
            sim.localDevice().processor(spec.localProc);
        ASSERT_NE(proc, nullptr);
        spec.vfIndex = proc->maxVfIndex();
        const sim::Outcome outcome =
            sim.runPartitioned(net, spec, env::EnvState{}, rng);
        EXPECT_TRUE(outcome.feasible) << action.label();
        EXPECT_GT(outcome.latencyMs, 0.0);
    }
}

TEST(HybridPolicy, PartitionDecisionsMaterializeCorrectly)
{
    // Rig the Q-table so a partition action is the greedy choice and
    // check the policy adapter emits a fully-specified PartitionSpec.
    const sim::InferenceSimulator sim = mi8Sim();
    auto policy = harness::makeHybridAutoScalePolicy(sim, 77);
    policy->setExploration(false);

    const dnn::Network &net = dnn::findModel("ResNet 50");
    const sim::InferenceRequest request = sim::makeRequest(net);
    const env::EnvState env;

    // Find a DSP partition action and make it dominate everywhere.
    const auto &actions = policy->scheduler().actions();
    int partition_index = -1;
    for (std::size_t i = 0; i < actions.size(); ++i) {
        if (actions[i].partitioned
            && actions[i].localProc == platform::ProcKind::MobileDsp
            && actions[i].splitFraction == 0.5) {
            partition_index = static_cast<int>(i);
        }
    }
    ASSERT_GE(partition_index, 0);
    core::QTable &table = policy->scheduler().mutableAgent().mutableTable();
    for (int s = 0; s < table.numStates(); ++s) {
        table.at(s, partition_index) = 1000.0f;
    }

    Rng rng(78);
    const baselines::Decision decision = policy->decide(request, env, rng);
    ASSERT_TRUE(decision.partitioned);
    EXPECT_EQ(decision.partition.localProc, platform::ProcKind::MobileDsp);
    EXPECT_EQ(decision.partition.localPrecision, dnn::Precision::INT8);
    EXPECT_EQ(decision.partition.splitLayer,
              (net.layers().size() + 1) / 2);
    // The adapter fills the V/F index with the processor's top step.
    EXPECT_EQ(decision.partition.vfIndex,
              sim.localDevice().dsp().maxVfIndex());
    // And the decision is executable end to end.
    const sim::Outcome outcome =
        baselines::executeDecision(sim, request, decision, env, rng);
    EXPECT_TRUE(outcome.feasible);
    policy->feedback(outcome);
    policy->finishEpisode();
}

TEST(HybridPolicy, TrainsThroughTheGenericHarness)
{
    const sim::InferenceSimulator sim = mi8Sim();
    auto policy = harness::makeHybridAutoScalePolicy(sim, 4);
    Rng rng(5);
    const auto nets = std::vector<const dnn::Network *>{
        &dnn::findModel("MobileNet v1"), &dnn::findModel("Inception v1")};
    harness::trainPolicy(*policy, sim, nets, {env::ScenarioId::S1}, 120,
                         rng);
    policy->setExploration(false);

    harness::EvalOptions options;
    options.runsPerCombo = 15;
    options.seed = 6;
    options.compareOracle = false;
    const harness::RunStats stats = harness::evaluatePolicy(
        *policy, sim, nets, {env::ScenarioId::S1}, options);
    EXPECT_LT(stats.qosViolationRatio(), 0.2);
    // A competent scheduler: well under the CPU baseline's energy.
    const sim::Outcome cpu = sim.expected(
        *nets[0],
        sim::ExecutionTarget{sim::TargetPlace::Local,
                             platform::ProcKind::MobileCpu,
                             sim.localDevice().cpu().maxVfIndex(),
                             dnn::Precision::FP32},
        env::EnvState{});
    EXPECT_LT(stats.meanEnergyJ(), cpu.energyJ);
}

TEST(HybridPolicy, NeverWorseThanPlainAutoScaleWithEnoughTraining)
{
    // The hybrid action space strictly contains the plain one, so with
    // matching training budgets its converged quality should be at
    // least comparable (allowing a small noise margin).
    const sim::InferenceSimulator sim = mi8Sim();
    const auto nets = harness::allZooNetworks();
    const std::vector<env::ScenarioId> scenarios{env::ScenarioId::S4};

    auto plain = harness::makeAutoScalePolicy(sim, 7);
    Rng rng1(8);
    harness::trainPolicy(*plain, sim, nets, scenarios, 250, rng1);
    plain->setExploration(false);

    auto hybrid = harness::makeHybridAutoScalePolicy(sim, 7);
    Rng rng2(8);
    harness::trainPolicy(*hybrid, sim, nets, scenarios, 250, rng2);
    hybrid->setExploration(false);

    harness::EvalOptions options;
    options.runsPerCombo = 15;
    options.seed = 9;
    options.compareOracle = false;
    const harness::RunStats plain_stats =
        harness::evaluatePolicy(*plain, sim, nets, scenarios, options);
    const harness::RunStats hybrid_stats =
        harness::evaluatePolicy(*hybrid, sim, nets, scenarios, options);
    EXPECT_GT(hybrid_stats.ppw(), 0.85 * plain_stats.ppw());
}

} // namespace
} // namespace autoscale
