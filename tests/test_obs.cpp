/**
 * @file
 * Observability layer: MetricsRegistry semantics (bucket edges, merge
 * determinism), JSON formatting/escaping, TraceRecorder buffering and
 * exporters, the disabled fast path, logging flush hooks, and the
 * end-to-end determinism contract through the experiment runners.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <locale>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/fixed.h"
#include "harness/experiment.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/obs_output.h"
#include "obs/trace_recorder.h"
#include "platform/device_zoo.h"
#include "sim/simulator.h"
#include "util/format.h"
#include "util/logging.h"

namespace {

using namespace autoscale;

obs::DecisionEvent
sampleEvent(const std::string &policy, const std::string &category,
            double latencyMs)
{
    obs::DecisionEvent event;
    event.policy = policy;
    event.network = "MobileNet v3";
    event.scenario = "S1";
    event.phase = "eval";
    event.target = "Local CPU INT8 @2.80GHz";
    event.category = category;
    event.latencyMs = latencyMs;
    event.energyJ = 0.02;
    event.qosMs = 50.0;
    event.reward = -0.8;
    return event;
}

TEST(MetricSlug, CollapsesAndLowercases)
{
    EXPECT_EQ(obs::metricSlug("Edge (CPU FP32)"), "edge_cpu_fp32");
    EXPECT_EQ(obs::metricSlug("on-device"), "on_device");
    EXPECT_EQ(obs::metricSlug("Local CPU INT8 @2.80GHz"),
              "local_cpu_int8_2_80ghz");
    EXPECT_EQ(obs::metricSlug("(Cloud)"), "cloud");
    EXPECT_EQ(obs::metricSlug(""), "");
    EXPECT_EQ(obs::metricSlug("---"), "");
}

TEST(MetricsRegistry, CountersAndGauges)
{
    obs::MetricsRegistry registry;
    EXPECT_TRUE(registry.empty());
    EXPECT_EQ(registry.counterValue("missing"), 0);

    registry.inc("a");
    registry.inc("a", 4);
    EXPECT_EQ(registry.counterValue("a"), 5);

    registry.set("g", 1.5);
    registry.set("g", -2.0); // last write wins
    EXPECT_DOUBLE_EQ(registry.gauge("g"), -2.0);
    EXPECT_DOUBLE_EQ(registry.gauge("missing"), 0.0);
    EXPECT_FALSE(registry.empty());

    registry.clear();
    EXPECT_TRUE(registry.empty());
}

TEST(MetricsRegistry, HistogramBucketEdgesAreInclusive)
{
    obs::MetricsRegistry registry;
    registry.declareHistogram("h", {1.0, 2.0, 5.0});

    registry.observe("h", 1.0); // == bound: belongs to that bucket (le)
    registry.observe("h", 1.5);
    registry.observe("h", 5.0);
    registry.observe("h", 7.0); // overflow bucket

    const obs::MetricsRegistry::HistogramSnapshot snapshot =
        registry.histogram("h");
    ASSERT_EQ(snapshot.bucketCounts.size(), 4u);
    EXPECT_EQ(snapshot.bucketCounts[0], 1); // 1.0
    EXPECT_EQ(snapshot.bucketCounts[1], 1); // 1.5
    EXPECT_EQ(snapshot.bucketCounts[2], 1); // 5.0
    EXPECT_EQ(snapshot.bucketCounts[3], 1); // 7.0
    EXPECT_EQ(snapshot.count, 4);
    EXPECT_DOUBLE_EQ(snapshot.sum, 1.0 + 1.5 + 5.0 + 7.0);
    EXPECT_DOUBLE_EQ(snapshot.min, 1.0);
    EXPECT_DOUBLE_EQ(snapshot.max, 7.0);
}

TEST(MetricsRegistry, ObserveAutoDeclaresWithDefaultBuckets)
{
    obs::MetricsRegistry registry;
    EXPECT_FALSE(registry.hasHistogram("auto"));
    registry.observe("auto", 0.5);
    EXPECT_TRUE(registry.hasHistogram("auto"));
    EXPECT_EQ(registry.histogram("auto").upperBounds,
              obs::MetricsRegistry::defaultBuckets());
}

TEST(MetricsRegistry, DeclareIsIdempotent)
{
    obs::MetricsRegistry registry;
    registry.declareHistogram("h", {1.0, 2.0});
    registry.observe("h", 1.5);
    registry.declareHistogram("h", {1.0, 2.0}); // no-op, keeps counts
    EXPECT_EQ(registry.histogram("h").count, 1);
}

TEST(MetricsRegistry, MergeMatchesSerialAccumulation)
{
    // Merging replicate registries in index order must reproduce the
    // serial run byte-for-byte (the --jobs determinism contract).
    obs::MetricsRegistry serial;
    serial.declareHistogram("h", {1.0, 10.0});
    for (const double value : {0.1, 0.2, 0.3, 4.0}) {
        serial.observe("h", value);
    }
    serial.inc("n", 4);
    serial.set("g", 7.0);

    obs::MetricsRegistry a;
    a.declareHistogram("h", {1.0, 10.0});
    a.observe("h", 0.1);
    a.observe("h", 0.2);
    a.inc("n", 2);
    a.set("g", 3.0);
    obs::MetricsRegistry b;
    b.declareHistogram("h", {1.0, 10.0});
    b.observe("h", 0.3);
    b.observe("h", 4.0);
    b.inc("n", 2);
    b.set("g", 7.0); // gauge: other's value wins on merge

    obs::MetricsRegistry merged;
    merged.merge(a);
    merged.merge(b);

    std::ostringstream expected;
    std::ostringstream actual;
    serial.writeText(expected);
    merged.writeText(actual);
    EXPECT_EQ(actual.str(), expected.str());
    EXPECT_EQ(merged.counterValue("n"), 4);
    EXPECT_DOUBLE_EQ(merged.gauge("g"), 7.0);
}

TEST(MetricsRegistryDeathTest, MergeRejectsMismatchedBuckets)
{
    obs::MetricsRegistry a;
    a.declareHistogram("h", {1.0, 2.0});
    a.observe("h", 1.0);
    obs::MetricsRegistry b;
    b.declareHistogram("h", {1.0, 3.0});
    b.observe("h", 1.0);
    EXPECT_DEATH(a.merge(b), "check failed");
}

TEST(Json, NumberFormatting)
{
    EXPECT_EQ(obs::jsonNumber(0.0), "0");
    EXPECT_EQ(obs::jsonNumber(1.5), "1.5");
    EXPECT_EQ(obs::jsonNumber(-12.25), "-12.25");
    // Shortest round-trip: 0.1 stays "0.1", not "0.1000000000000000055".
    EXPECT_EQ(obs::jsonNumber(0.1), "0.1");
    // JSON cannot represent non-finite values.
    EXPECT_EQ(obs::jsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(obs::jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
}

/** numpunct facet with a comma decimal point (a de_DE-style locale,
 * available without any OS locale data installed). */
struct CommaDecimalPoint : std::numpunct<char> {
    char do_decimal_point() const override { return ','; }
    std::string do_grouping() const override { return "\3"; }
    char do_thousands_sep() const override { return '.'; }
};

/** Install a comma-decimal global locale for the test's scope. */
class ScopedCommaLocale {
  public:
    ScopedCommaLocale()
        : previous_(std::locale::global(
              std::locale(std::locale::classic(),
                          new CommaDecimalPoint)))
    {
    }
    ~ScopedCommaLocale() { std::locale::global(previous_); }

  private:
    std::locale previous_;
};

TEST(Json, NumberFormattingIsLocaleIndependent)
{
    // A comma-decimal global locale (the classic iostream footgun)
    // must not leak into JSON output: numbers always use '.'.
    const ScopedCommaLocale commaLocale;
    EXPECT_EQ(obs::jsonNumber(1.5), "1.5");
    EXPECT_EQ(obs::jsonNumber(-12.25), "-12.25");
    EXPECT_EQ(obs::jsonNumber(0.1), "0.1");
    EXPECT_EQ(obs::jsonNumber(1234567.5), "1234567.5");
    EXPECT_EQ(formatDouble(2.5e-3), "0.0025");
}

TEST(MetricsRegistry, DumpIsLocaleIndependent)
{
    obs::MetricsRegistry metrics;
    metrics.counter("test.count").add(3);
    metrics.set("test.gauge", 12.5);
    metrics.observe("test.histogram", 0.75);
    std::ostringstream classicOs;
    metrics.writeText(classicOs);
    {
        const ScopedCommaLocale commaLocale;
        std::ostringstream commaOs;
        metrics.writeText(commaOs);
        EXPECT_EQ(commaOs.str(), classicOs.str());
    }
    EXPECT_EQ(classicOs.str().find(','), std::string::npos)
        << classicOs.str();
}

TEST(TraceRecorder, JsonlExportIsLocaleIndependent)
{
    obs::TraceRecorder trace;
    trace.record(sampleEvent("autoscale", "Local CPU", 12.5));
    trace.record(sampleEvent("cloud", "Cloud", 0.125));
    std::ostringstream classicOs;
    trace.writeJsonl(classicOs);
    const ScopedCommaLocale commaLocale;
    std::ostringstream commaOs;
    trace.writeJsonl(commaOs);
    EXPECT_EQ(commaOs.str(), classicOs.str());
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(obs::jsonString("plain"), "\"plain\"");
    EXPECT_EQ(obs::jsonString("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(obs::jsonString("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(obs::jsonString("tab\there"), "\"tab\\there\"");
    EXPECT_EQ(obs::jsonString("line\nbreak"), "\"line\\nbreak\"");
    EXPECT_EQ(obs::jsonString(std::string("ctrl\x01") + "x"),
              "\"ctrl\\u0001x\"");
}

TEST(TraceRecorder, DisabledFastPathRecordsNothing)
{
    obs::TraceRecorder off(false);
    EXPECT_FALSE(off.enabled());
    off.record(sampleEvent("AutoScale", "on-device", 10.0));
    EXPECT_EQ(off.size(), 0u);

    // Default ObsContext: fully disabled, one null check per decision.
    const obs::ObsContext none;
    EXPECT_FALSE(none.tracing());
    EXPECT_FALSE(none.metering());
    EXPECT_FALSE(none.enabled());

    // A context holding a disabled recorder is also not tracing.
    obs::ObsContext with_off;
    with_off.trace = &off;
    EXPECT_FALSE(with_off.tracing());
    EXPECT_FALSE(with_off.enabled());

    std::ostringstream out;
    off.writeJsonl(out);
    EXPECT_TRUE(out.str().empty());
}

TEST(TraceRecorder, AppendKeepsIndexOrderAndSeqFollowsPosition)
{
    obs::TraceRecorder a;
    a.record(sampleEvent("A", "on-device", 1.0));
    a.record(sampleEvent("A", "on-device", 2.0));
    obs::TraceRecorder b;
    b.record(sampleEvent("B", "cloud", 3.0));

    a.append(b);
    ASSERT_EQ(a.size(), 3u);
    const std::vector<obs::DecisionEvent> events = a.snapshot();
    EXPECT_EQ(events[0].policy, "A");
    EXPECT_EQ(events[2].policy, "B");

    std::ostringstream out;
    a.writeJsonl(out);
    std::istringstream lines(out.str());
    std::string line;
    int seq = 0;
    while (std::getline(lines, line)) {
        const std::string prefix =
            "{\"seq\":" + std::to_string(seq) + ",";
        EXPECT_EQ(line.substr(0, prefix.size()), prefix);
        ++seq;
    }
    EXPECT_EQ(seq, 3);
}

TEST(TraceRecorder, JsonlEscapesEventStrings)
{
    obs::TraceRecorder recorder;
    obs::DecisionEvent event = sampleEvent("Edge \"Best\"", "on-device",
                                           1.0);
    event.network = "net\nwork";
    recorder.record(event);

    std::ostringstream out;
    recorder.writeJsonl(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("\"policy\":\"Edge \\\"Best\\\"\""),
              std::string::npos);
    EXPECT_NE(text.find("\"network\":\"net\\nwork\""), std::string::npos);
    // Exactly one line despite the embedded newline in the data.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
}

/** Structural JSON check: balanced braces/brackets outside strings. */
bool
balancedJson(const std::string &text)
{
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (const char c : text) {
        if (in_string) {
            if (escaped) {
                escaped = false;
            } else if (c == '\\') {
                escaped = true;
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        if (c == '"') {
            in_string = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            if (--depth < 0) {
                return false;
            }
        }
    }
    return depth == 0 && !in_string;
}

TEST(TraceRecorder, ChromeTraceIsStructurallyValid)
{
    obs::TraceRecorder recorder;
    recorder.record(sampleEvent("AutoScale", "on-device", 10.0));
    recorder.record(sampleEvent("AutoScale", "cloud", 5.0));
    recorder.record(sampleEvent("Opt", "on-device", 2.5));

    std::ostringstream out;
    recorder.writeChromeTrace(out);
    const std::string text = out.str();

    EXPECT_TRUE(balancedJson(text)) << text;
    EXPECT_EQ(text.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
                         0),
              0u);
    // One thread-name metadata event per category, numbered in first-
    // appearance order.
    EXPECT_NE(text.find("\"name\":\"thread_name\",\"args\":"
                        "{\"name\":\"on-device\"}"),
              std::string::npos);
    EXPECT_NE(text.find("\"name\":\"thread_name\",\"args\":"
                        "{\"name\":\"cloud\"}"),
              std::string::npos);
    // The synthetic timeline advances by observed latency: the second
    // X event starts where the first one ended (10 ms = 10000 us).
    EXPECT_NE(text.find("\"ts\":0,"), std::string::npos);
    EXPECT_NE(text.find("\"ts\":10000,"), std::string::npos);
    EXPECT_NE(text.find("\"ts\":15000,"), std::string::npos);
}

TEST(TraceRecorderDeathTest, UnknownFormatNameIsFatal)
{
    EXPECT_EXIT(obs::traceFormatFromName("bogus"),
                ::testing::ExitedWithCode(1), "unknown trace format");
}

TEST(FlushHooks, RunInRegistrationOrderAndUnregister)
{
    std::vector<int> order;
    const std::size_t first =
        registerFlushHook([&order] { order.push_back(1); });
    const std::size_t second =
        registerFlushHook([&order] { order.push_back(2); });

    runFlushHooks();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));

    unregisterFlushHook(first);
    runFlushHooks();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 2}));
    unregisterFlushHook(second);
    runFlushHooks();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 2}));
}

TEST(FlushHooks, ReentrantHookDoesNotRecurse)
{
    int calls = 0;
    const std::size_t id = registerFlushHook([&calls] {
        ++calls;
        runFlushHooks(); // must be ignored, not recurse forever
    });
    runFlushHooks();
    unregisterFlushHook(id);
    EXPECT_EQ(calls, 1);
}

TEST(FlushHooksDeathTest, FatalRunsHooksBeforeExit)
{
    const std::string path = "flush_hook_fatal_out.txt";
    std::remove(path.c_str());
    EXPECT_EXIT(
        {
            registerFlushHook([&path] {
                std::ofstream file(path);
                file << "flushed\n";
            });
            fatal("boom");
        },
        ::testing::ExitedWithCode(1), "fatal: boom");
    // The hook ran in the death-test child before exit(1).
    std::ifstream file(path);
    ASSERT_TRUE(file.good());
    std::string content;
    std::getline(file, content);
    EXPECT_EQ(content, "flushed");
    std::remove(path.c_str());
}

TEST(ObsOutput, ParsesArgsAndWritesFilesOnce)
{
    const char *argv[] = {"prog",        "cmd",            "--trace",
                          "obs_t.jsonl", "--trace-format", "jsonl",
                          "--metrics",   "obs_m.txt"};
    const Args args(8, argv);
    const obs::ObsConfig config = obs::ObsConfig::fromArgs(args);
    EXPECT_TRUE(config.tracing());
    EXPECT_TRUE(config.metering());
    EXPECT_EQ(config.tracePath, "obs_t.jsonl");
    EXPECT_EQ(config.metricsPath, "obs_m.txt");

    {
        obs::ObsOutput out(config);
        const obs::ObsContext context = out.context();
        ASSERT_TRUE(context.tracing());
        ASSERT_TRUE(context.metering());
        context.trace->record(sampleEvent("AutoScale", "on-device", 1.0));
        context.metrics->inc("eval.inferences");
        out.finalize(nullptr);
        out.finalize(nullptr); // idempotent
    }

    std::ifstream trace("obs_t.jsonl");
    ASSERT_TRUE(trace.good());
    std::string line;
    int lines = 0;
    while (std::getline(trace, line)) {
        ++lines;
    }
    EXPECT_EQ(lines, 1);

    std::ifstream metrics("obs_m.txt");
    ASSERT_TRUE(metrics.good());
    std::getline(metrics, line);
    EXPECT_EQ(line, "counter eval.inferences 1");
    std::remove("obs_t.jsonl");
    std::remove("obs_m.txt");
}

TEST(ObsOutput, DisabledConfigYieldsDisabledContext)
{
    obs::ObsOutput out(obs::ObsConfig{});
    EXPECT_FALSE(out.context().enabled());
    out.finalize(nullptr); // writes nothing, must not crash
}

TEST(ExperimentObs, EvaluatePolicyRecordsOneEventPerInference)
{
    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    auto policy = baselines::makeEdgeCpuFp32Policy(sim);

    obs::TraceRecorder trace;
    obs::MetricsRegistry metrics;
    harness::EvalOptions options;
    options.runsPerCombo = 2;
    options.seed = 42;
    options.obs.trace = &trace;
    options.obs.metrics = &metrics;

    const harness::RunStats stats = harness::evaluatePolicy(
        *policy, sim, harness::allZooNetworks(), {env::ScenarioId::S1},
        options);

    ASSERT_GT(stats.count(), 0);
    EXPECT_EQ(trace.size(), static_cast<std::size_t>(stats.count()));
    EXPECT_EQ(metrics.counterValue("eval.inferences"), stats.count());
    EXPECT_EQ(metrics.histogram("eval.latency_ms").count, stats.count());

    const std::vector<obs::DecisionEvent> events = trace.snapshot();
    EXPECT_EQ(events.front().phase, "eval");
    EXPECT_EQ(events.front().policy, "Edge (CPU FP32)");
    EXPECT_EQ(events.front().scenario, "S1");
    EXPECT_GT(events.front().latencyMs, 0.0);
    // Fixed policies expose no learner introspection.
    EXPECT_EQ(events.front().stateId, -1);
    EXPECT_EQ(events.front().actionId, -1);
}

TEST(ExperimentObs, TrainPolicyRecordsTrainPhaseEvents)
{
    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    auto policy = harness::makeAutoScalePolicy(sim, 7);

    obs::TraceRecorder trace;
    obs::ObsContext obs;
    obs.trace = &trace;
    Rng rng(8);
    harness::trainPolicy(*policy, sim, harness::allZooNetworks(),
                         {env::ScenarioId::S1}, 2, rng, false, 50.0, obs);

    ASSERT_GT(trace.size(), 0u);
    const std::vector<obs::DecisionEvent> events = trace.snapshot();
    EXPECT_EQ(events.front().phase, "train");
    EXPECT_EQ(events.front().policy, "AutoScale");
    // The learner's introspection is wired through.
    EXPECT_GE(events.front().stateId, 0);
    EXPECT_GE(events.front().actionId, 0);
}

TEST(ExperimentObs, LooTraceAndMetricsAreJobsInvariant)
{
    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());

    const auto run = [&](int jobs, std::string *trace_text,
                         std::string *metrics_text) {
        obs::TraceRecorder trace;
        obs::MetricsRegistry metrics;
        harness::EvalOptions options;
        options.runsPerCombo = 2;
        options.looWarmupRuns = 2;
        options.seed = 5;
        options.jobs = jobs;
        options.obs.trace = &trace;
        options.obs.metrics = &metrics;
        const harness::RunStats stats = harness::evaluateAutoScaleLoo(
            sim, harness::allZooNetworks(), {env::ScenarioId::S1},
            /*trainRunsPerCombo=*/5, options);
        EXPECT_EQ(trace.size(), static_cast<std::size_t>(stats.count()));
        std::ostringstream trace_out;
        trace.writeJsonl(trace_out);
        *trace_text = trace_out.str();
        std::ostringstream metrics_out;
        metrics.writeText(metrics_out);
        *metrics_text = metrics_out.str();
        return stats;
    };

    std::string trace_serial;
    std::string metrics_serial;
    const harness::RunStats serial = run(1, &trace_serial, &metrics_serial);
    std::string trace_parallel;
    std::string metrics_parallel;
    const harness::RunStats parallel =
        run(2, &trace_parallel, &metrics_parallel);

    EXPECT_EQ(serial.count(), parallel.count());
    EXPECT_FALSE(trace_serial.empty());
    EXPECT_EQ(trace_serial, trace_parallel);
    EXPECT_EQ(metrics_serial, metrics_parallel);
}

} // namespace
