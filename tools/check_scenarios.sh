#!/usr/bin/env bash
# Determinism gate for the scenario library: every scenarios/*.scn must
# (a) lint clean, (b) produce a byte-identical serve trace across two
# runs, and (c) produce the same trace under --jobs 1 and --jobs 4.
# Library files pin their own small workloads, so this script passes no
# workload flags — only --variant 0, which is valid for swept and
# unswept files alike (variant 0 always exists).
#
# Usage: tools/check_scenarios.sh [build-dir]   (default: ./build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
cli="$build/tools/autoscale_cli"
lint="$build/tools/scenario_lint"

for binary in "$cli" "$lint"; do
    if [[ ! -x "$binary" ]]; then
        echo "missing $binary — build first (cmake --build $build)" >&2
        exit 1
    fi
done

"$lint" --all "$repo/scenarios"

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

failures=0
for scn in "$repo"/scenarios/*.scn; do
    name="$(basename "$scn" .scn)"
    echo "== $name"
    # Each run gets its own cwd and writes `trace.jsonl` relative to
    # it, so the serve stdout (which echoes the trace path) must be
    # byte-identical too — not just the traces.
    for run in run1 run2 jobs1 jobs4; do
        mkdir -p "$work/$name.$run"
    done
    (cd "$work/$name.run1" && "$cli" serve --scenario "$scn" \
        --variant 0 --trace trace.jsonl > stdout.txt)
    (cd "$work/$name.run2" && "$cli" serve --scenario "$scn" \
        --variant 0 --trace trace.jsonl > stdout.txt)
    (cd "$work/$name.jobs1" && "$cli" serve --scenario "$scn" \
        --variant 0 --jobs 1 --trace trace.jsonl > /dev/null)
    (cd "$work/$name.jobs4" && "$cli" serve --scenario "$scn" \
        --variant 0 --jobs 4 --trace trace.jsonl > /dev/null)
    ok=1
    cmp -s "$work/$name.run1/trace.jsonl" "$work/$name.run2/trace.jsonl" \
        || { echo "   FAIL: trace differs across reruns"; ok=0; }
    cmp -s "$work/$name.run1/stdout.txt" "$work/$name.run2/stdout.txt" \
        || { echo "   FAIL: stdout differs across reruns"; ok=0; }
    cmp -s "$work/$name.jobs1/trace.jsonl" "$work/$name.jobs4/trace.jsonl" \
        || { echo "   FAIL: trace differs between --jobs 1 and 4"; ok=0; }
    if [[ "$ok" == 1 ]]; then
        echo "   ok: rerun-identical and jobs-independent"
    else
        failures=$((failures + 1))
    fi
done

if [[ "$failures" -gt 0 ]]; then
    echo "check_scenarios: $failures scenario(s) failed" >&2
    exit 1
fi
echo "check_scenarios: all scenarios deterministic"
