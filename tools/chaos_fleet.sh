#!/usr/bin/env bash
# Chaos-recovery harness (DESIGN.md §17): SIGKILL a contended,
# churning, federated fleet at a random wall-clock point in each round,
# then resume from its epoch-barrier manifest and demand the recovered
# run's exports — trace, metrics, and the full per-device Q-table dump
# — are byte-identical to an uninterrupted run of the same
# configuration. This is the end-to-end proof of checkpoint-verified
# deterministic replay (src/serve/fleet_checkpoint.h): no matter where
# the process dies, the manifest that survives (primary or .prev, both
# CRC-guarded and atomically rotated) resumes to the same bytes.
#
# Kill times are wall-clock random on purpose — the point is that
# recovery holds at *any* barrier, including "no manifest written yet"
# (cold start) and "run already finished" (replay-verify only). The
# deterministic single-barrier variant runs as the
# cli_fleet_crash_recovery ctest; this harness is the CI chaos loop.
#
# Usage: tools/chaos_fleet.sh [build-dir] (default: ./build)
#   CHAOS_ROUNDS  kill/resume rounds (default 5)
#   CHAOS_SEED    fleet master seed  (default 29)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
cli="$build/tools/autoscale_cli"
rounds="${CHAOS_ROUNDS:-5}"
seed="${CHAOS_SEED:-29}"

if [[ ! -x "$cli" ]]; then
    echo "missing $cli — build first (cmake --build $build)" >&2
    exit 1
fi

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

# Big enough to run a few seconds (so random kills land mid-run on
# most rounds), contended and churning so recovery is exercised under
# the nastiest schedule we can declare.
common=(serve --device Mi8Pro --scenario D3 --fleet 4
        --requests 50000 --rate-x 3 --train-runs 5 --seed "$seed"
        --q-mode federated --merge-epochs 2 --contention 4
        --churn-crash-prob 0.05 --churn-down-epochs 2
        --outage-period-ms 1500 --outage-ms 300)
# The manifest carries the merged Q-table (a couple of MB); writing it
# at every one of the ~650 barriers would be all write amplification,
# so the chaos victims checkpoint every 64 epochs.
ckptevery=(--checkpoint-every 64)

echo "chaos_fleet: baseline (uninterrupted) run..."
"$cli" "${common[@]}" \
    --trace "$work/base.jsonl" --metrics "$work/base_metrics.txt" \
    --fleet-qtable-out "$work/base_qtables.txt" \
    > "$work/base_report.txt"

fail=0
for round in $(seq 1 "$rounds"); do
    ckpt="$work/round$round.ckpt"
    # Random kill point in [0.1s, 2.9s]: early enough to sometimes
    # precede the first manifest, late enough to sometimes outlive the
    # whole run.
    # Never 0.0: `timeout 0s` means "no timeout", not "kill at once".
    delay="$((RANDOM % 3)).$((RANDOM % 9 + 1))"
    set +e
    timeout -s KILL "${delay}s" \
        "$cli" "${common[@]}" --checkpoint "$ckpt" "${ckptevery[@]}" > /dev/null 2>&1
    rc=$?
    set -e
    if [[ $rc -ne 0 && $rc -ne 137 && $rc -ne 124 ]]; then
        echo "chaos_fleet: round $round: victim exited rc=$rc (want 0 or SIGKILL)" >&2
        exit 1
    fi
    state="killed at ${delay}s"
    [[ $rc -eq 0 ]] && state="completed before ${delay}s kill"

    "$cli" "${common[@]}" --checkpoint "$ckpt" "${ckptevery[@]}" --resume \
        --trace "$work/r$round.jsonl" \
        --metrics "$work/r${round}_metrics.txt" \
        --fleet-qtable-out "$work/r${round}_qtables.txt" \
        > "$work/r${round}_report.txt"

    ok=1
    cmp -s "$work/base.jsonl" "$work/r$round.jsonl" || ok=0
    cmp -s "$work/base_metrics.txt" "$work/r${round}_metrics.txt" || ok=0
    cmp -s "$work/base_qtables.txt" "$work/r${round}_qtables.txt" || ok=0
    if [[ $ok -eq 1 ]]; then
        echo "chaos_fleet: round $round: $state -> recovered byte-identical"
    else
        echo "chaos_fleet: round $round: $state -> DIVERGED" >&2
        # Keep the evidence out of the auto-removed tempdir.
        mkdir -p "$build/chaos-diverged"
        cp "$work/base.jsonl" "$work/r$round.jsonl" \
           "$work/base_metrics.txt" "$work/r${round}_metrics.txt" \
           "$work/base_qtables.txt" "$work/r${round}_qtables.txt" \
           "$build/chaos-diverged/" 2>/dev/null || true
        fail=1
    fi
done

if [[ $fail -ne 0 ]]; then
    echo "chaos_fleet: FAILED — divergent artifacts in $build/chaos-diverged" >&2
    exit 1
fi
echo "chaos_fleet: all $rounds rounds recovered byte-identical"
