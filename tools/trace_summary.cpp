/**
 * @file
 * Summarize a JSONL decision trace produced by `autoscale_cli --trace`
 * (or any bench with `--trace`): per-target decision shares, QoS
 * violation rate, performance per watt, and mean latency/energy.
 *
 *   trace_summary trace.jsonl
 *   trace_summary trace.jsonl --policy AutoScale --phase eval
 *
 * The parser accepts exactly what TraceRecorder::writeJsonl emits: one
 * flat JSON object per line with string/number/bool/null values. It is
 * intentionally not a general JSON library — nested values are
 * rejected loudly rather than misread.
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "util/args.h"
#include "util/logging.h"
#include "util/table.h"

namespace {

using namespace autoscale;

/** One parsed trace line: raw field values keyed by name. */
using Record = std::map<std::string, std::string>;

/** Skip spaces/tabs (writeJsonl emits none, but be tolerant). */
void
skipSpace(const std::string &line, std::size_t &pos)
{
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) {
        ++pos;
    }
}

/**
 * Parse a JSON string starting at the opening quote; returns the
 * unescaped value and leaves @p pos one past the closing quote.
 */
bool
parseString(const std::string &line, std::size_t &pos, std::string *out)
{
    if (pos >= line.size() || line[pos] != '"') {
        return false;
    }
    ++pos;
    out->clear();
    while (pos < line.size()) {
        const char c = line[pos];
        if (c == '"') {
            ++pos;
            return true;
        }
        if (c != '\\') {
            out->push_back(c);
            ++pos;
            continue;
        }
        if (pos + 1 >= line.size()) {
            return false;
        }
        const char esc = line[pos + 1];
        pos += 2;
        switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
            if (pos + 4 > line.size()) {
                return false;
            }
            const std::string hex = line.substr(pos, 4);
            pos += 4;
            const long code = std::strtol(hex.c_str(), nullptr, 16);
            // The writer only escapes control characters this way, so
            // a one-byte reconstruction is exact for our own output.
            out->push_back(static_cast<char>(code));
            break;
        }
        default: return false;
        }
    }
    return false;
}

/** Parse a bare scalar (number, true/false, null) as raw text. */
bool
parseScalar(const std::string &line, std::size_t &pos, std::string *out)
{
    const std::size_t start = pos;
    while (pos < line.size() && line[pos] != ',' && line[pos] != '}') {
        if (line[pos] == '{' || line[pos] == '[') {
            return false; // nested values are not part of the schema
        }
        ++pos;
    }
    *out = line.substr(start, pos - start);
    return !out->empty();
}

/** Parse one flat JSON object line into @p record. */
bool
parseLine(const std::string &line, Record *record)
{
    record->clear();
    std::size_t pos = 0;
    skipSpace(line, pos);
    if (pos >= line.size() || line[pos] != '{') {
        return false;
    }
    ++pos;
    skipSpace(line, pos);
    if (pos < line.size() && line[pos] == '}') {
        return true;
    }
    while (pos < line.size()) {
        std::string key;
        if (!parseString(line, pos, &key)) {
            return false;
        }
        skipSpace(line, pos);
        if (pos >= line.size() || line[pos] != ':') {
            return false;
        }
        ++pos;
        skipSpace(line, pos);
        std::string value;
        if (pos < line.size() && line[pos] == '"') {
            if (!parseString(line, pos, &value)) {
                return false;
            }
        } else if (!parseScalar(line, pos, &value)) {
            return false;
        }
        (*record)[key] = value;
        skipSpace(line, pos);
        if (pos < line.size() && line[pos] == ',') {
            ++pos;
            skipSpace(line, pos);
            continue;
        }
        return pos < line.size() && line[pos] == '}';
    }
    return false;
}

double
numberField(const Record &record, const std::string &key)
{
    const auto it = record.find(key);
    if (it == record.end() || it->second == "null") {
        return 0.0;
    }
    return std::strtod(it->second.c_str(), nullptr);
}

bool
boolField(const Record &record, const std::string &key)
{
    const auto it = record.find(key);
    return it != record.end() && it->second == "true";
}

std::string
stringField(const Record &record, const std::string &key)
{
    const auto it = record.find(key);
    return it == record.end() ? std::string() : it->second;
}

int
usage()
{
    std::cout <<
        "trace_summary — summarize an AutoScale JSONL decision trace\n\n"
        "Usage: trace_summary TRACE.jsonl [--policy NAME] [--phase P]\n"
        "  --policy NAME   only count events from this policy\n"
        "  --phase P       only count events from phase 'train'/'eval'\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || argv[1][0] == '-') {
        return usage();
    }
    const Args args(argc, argv);
    const std::string path = argv[1];
    const std::string policy_filter = args.get("--policy");
    const std::string phase_filter = args.get("--phase");

    std::ifstream file(path);
    if (!file) {
        fatal("cannot open '" + path + "'");
    }

    long long total = 0;
    long long skipped = 0;
    long long qos_violations = 0;
    long long accuracy_violations = 0;
    long long fallbacks = 0;
    long long explored = 0;
    double latency_sum_ms = 0.0;
    double energy_sum_j = 0.0;
    double reward_sum = 0.0;
    std::map<std::string, long long> by_target;
    std::map<std::string, long long> by_policy;

    // Serving-loop fields (PR 4); absent from pre-serve traces, in
    // which case the serving section is simply not printed.
    std::map<std::string, long long> by_serve_outcome;
    long long serve_records = 0;
    long long degraded = 0;
    long long short_circuits = 0;
    long long wlan_open_seen = 0;
    long long p2p_open_seen = 0;
    long long checkpoints = 0;
    double queue_depth_sum = 0.0;
    double queue_wait_sum_ms = 0.0;

    // Fleet fields (PR 7); absent outside `serve --fleet`, in which
    // case the Fleet section is simply not printed.
    std::map<long long, long long> by_device;
    long long fleet_records = 0;
    long long brownout_records = 0;
    long long congested_records = 0;
    long long max_fleet_epoch = 0;
    double edge_wait_sum_ms = 0.0;
    double min_derate = 1.0;

    // Resilience fields (PR 9): churn-shed requests and edge outage
    // windows; absent without a [churn] section or outage schedule, in
    // which case the Resilience section is simply not printed.
    long long outage_records = 0;
    long long churn_shed = 0;
    std::map<long long, long long> churn_shed_by_device;

    // Fleet memory record (DESIGN.md §18): one summary line appended
    // by `serve --fleet --fleet-memory`; absent from older traces, in
    // which case the Fleet memory section is simply not printed.
    bool have_fleet_memory = false;
    long long fleet_memory_devices = 0;
    double fleet_peak_rss_bytes = 0.0;
    double fleet_bytes_per_device = 0.0;

    std::string line;
    long long line_number = 0;
    Record record;
    while (std::getline(file, line)) {
        ++line_number;
        if (line.empty()) {
            continue;
        }
        if (!parseLine(line, &record)) {
            std::cerr << "trace_summary: " << path << ":" << line_number
                      << ": unparseable line (not a flat JSON object)\n";
            return 1;
        }
        // Not a decision event: summarize and move on before any
        // per-device or per-decision counting sees it.
        if (boolField(record, "fleet_memory")) {
            have_fleet_memory = true;
            fleet_memory_devices =
                static_cast<long long>(numberField(record, "devices"));
            fleet_peak_rss_bytes = numberField(record, "peak_rss_bytes");
            fleet_bytes_per_device =
                numberField(record, "bytes_per_device");
            continue;
        }
        if (!policy_filter.empty()
            && stringField(record, "policy") != policy_filter) {
            ++skipped;
            continue;
        }
        if (!phase_filter.empty()
            && stringField(record, "phase") != phase_filter) {
            ++skipped;
            continue;
        }
        if (record.count("device_id") != 0) {
            ++fleet_records;
            ++by_device[static_cast<long long>(
                numberField(record, "device_id"))];
            max_fleet_epoch = std::max(
                max_fleet_epoch,
                static_cast<long long>(
                    numberField(record, "fleet_epoch")));
            brownout_records +=
                boolField(record, "fleet_brownout") ? 1 : 0;
            outage_records += boolField(record, "edge_outage") ? 1 : 0;
            edge_wait_sum_ms += numberField(record, "edge_wait_ms");
            const double derate =
                numberField(record, "congestion_derate");
            if (derate > 0.0) {
                congested_records += derate < 1.0 ? 1 : 0;
                min_derate = std::min(min_derate, derate);
            }
        }
        const std::string serve_outcome =
            stringField(record, "serve_outcome");
        if (!serve_outcome.empty()) {
            ++serve_records;
            ++by_serve_outcome[serve_outcome];
            if (serve_outcome == "shed_churn") {
                ++churn_shed;
                if (record.count("device_id") != 0) {
                    ++churn_shed_by_device[static_cast<long long>(
                        numberField(record, "device_id"))];
                }
            }
            degraded += numberField(record, "degrade_level") > 0 ? 1 : 0;
            short_circuits +=
                boolField(record, "breaker_short_circuit") ? 1 : 0;
            wlan_open_seen +=
                stringField(record, "breaker_wlan") == "open" ? 1 : 0;
            p2p_open_seen +=
                stringField(record, "breaker_p2p") == "open" ? 1 : 0;
            checkpoints = std::max(
                checkpoints,
                static_cast<long long>(
                    numberField(record, "serve_checkpoints")));
            queue_depth_sum += numberField(record, "queue_depth");
            queue_wait_sum_ms += numberField(record, "queue_wait_ms");
            // Shed arrivals never became decisions; keep them out of
            // the decision mix and the per-decision means.
            if (serve_outcome != "served") {
                continue;
            }
        }
        ++total;
        ++by_target[stringField(record, "target")];
        ++by_policy[stringField(record, "policy")];
        qos_violations += boolField(record, "qos_violated") ? 1 : 0;
        accuracy_violations +=
            boolField(record, "accuracy_violated") ? 1 : 0;
        fallbacks += boolField(record, "fallback") ? 1 : 0;
        explored += boolField(record, "explored") ? 1 : 0;
        latency_sum_ms += numberField(record, "latency_ms");
        energy_sum_j += numberField(record, "energy_j");
        reward_sum += numberField(record, "reward");
    }

    if (total == 0 && serve_records == 0 && !have_fleet_memory) {
        std::cout << "No matching decision events in " << path
                  << " (" << skipped << " filtered out)\n";
        return 0;
    }

    const double n = static_cast<double>(std::max<long long>(1, total));
    const double mean_energy = energy_sum_j / n;
    std::cout << "Trace: " << path << " — " << total
              << " decision(s)";
    if (serve_records > 0) {
        std::cout << ", " << serve_records << " serving record(s)";
    }
    if (skipped > 0) {
        std::cout << " (" << skipped << " filtered out)";
    }
    std::cout << "\n\n";

    if (total > 0) {
        Table targets({"Target", "Decisions", "Share"});
        for (const auto &[target, count] : by_target) {
            targets.addRow({target, std::to_string(count),
                            Table::pct(static_cast<double>(count) / n)});
        }
        targets.print(std::cout);
        std::cout << "\n";

        Table summary({"Metric", "Value"});
        if (by_policy.size() > 1) {
            summary.addRow({"Policies",
                            std::to_string(by_policy.size())});
        }
        summary.addRow({"QoS violations",
                        Table::pct(static_cast<double>(qos_violations)
                                   / n)});
        summary.addRow({"Accuracy violations",
                        Table::pct(
                            static_cast<double>(accuracy_violations) / n)});
        summary.addRow({"Fallback decisions",
                        Table::pct(static_cast<double>(fallbacks) / n)});
        summary.addRow({"Explored decisions",
                        Table::pct(static_cast<double>(explored) / n)});
        summary.addRow({"Mean latency (ms)",
                        Table::num(latency_sum_ms / n, 2)});
        summary.addRow({"Mean energy (mJ)",
                        Table::num(mean_energy * 1e3, 2)});
        summary.addRow({"PPW (1/J)",
                        mean_energy > 0.0
                            ? Table::num(1.0 / mean_energy, 2)
                            : std::string("inf")});
        summary.addRow({"Mean reward", Table::num(reward_sum / n, 3)});
        summary.print(std::cout);
    }

    if (serve_records > 0) {
        const double sn = static_cast<double>(serve_records);
        std::cout << "\nServing:\n";
        Table serving({"Metric", "Value"});
        for (const auto &[outcome, count] : by_serve_outcome) {
            serving.addRow(
                {outcome, std::to_string(count) + " ("
                              + Table::pct(static_cast<double>(count) / sn)
                              + ")"});
        }
        serving.addRow({"degraded decisions", std::to_string(degraded)});
        serving.addRow({"breaker short-circuits",
                        std::to_string(short_circuits)});
        serving.addRow({"records with wlan breaker open",
                        std::to_string(wlan_open_seen)});
        serving.addRow({"records with p2p breaker open",
                        std::to_string(p2p_open_seen)});
        serving.addRow({"checkpoints written",
                        std::to_string(checkpoints)});
        serving.addRow({"mean queue depth",
                        Table::num(queue_depth_sum / sn, 2)});
        const long long served_count = total;
        serving.addRow(
            {"mean queue wait (ms)",
             Table::num(queue_wait_sum_ms
                            / static_cast<double>(
                                std::max<long long>(1, served_count)),
                        2)});
        serving.print(std::cout);
    }

    if (fleet_records > 0) {
        const double fn = static_cast<double>(fleet_records);
        std::cout << "\nFleet:\n";
        Table fleet({"Metric", "Value"});
        fleet.addRow({"devices seen",
                      std::to_string(by_device.size())});
        fleet.addRow({"fleet records", std::to_string(fleet_records)});
        fleet.addRow({"epochs (max index)",
                      std::to_string(max_fleet_epoch + 1)});
        fleet.addRow(
            {"brownout records",
             std::to_string(brownout_records) + " ("
                 + Table::pct(static_cast<double>(brownout_records) / fn)
                 + ")"});
        fleet.addRow(
            {"congested records",
             std::to_string(congested_records) + " ("
                 + Table::pct(static_cast<double>(congested_records) / fn)
                 + ")"});
        fleet.addRow({"mean edge wait (ms)",
                      Table::num(edge_wait_sum_ms / fn, 2)});
        fleet.addRow({"min congestion derate",
                      Table::num(min_derate, 3)});
        fleet.print(std::cout);
    }

    if (have_fleet_memory) {
        std::cout << "\nFleet memory:\n";
        Table memory({"Metric", "Value"});
        memory.addRow({"devices", std::to_string(fleet_memory_devices)});
        memory.addRow({"peak RSS (MiB)",
                       Table::num(fleet_peak_rss_bytes / (1024.0 * 1024.0),
                                  1)});
        memory.addRow({"bytes / device",
                       Table::num(fleet_bytes_per_device, 0)});
        memory.print(std::cout);
    }

    if (churn_shed > 0 || outage_records > 0) {
        std::cout << "\nResilience:\n";
        Table resilience({"Metric", "Value"});
        std::string churn_cell = std::to_string(churn_shed);
        if (serve_records > 0) {
            churn_cell += " ("
                + Table::pct(static_cast<double>(churn_shed)
                             / static_cast<double>(serve_records))
                + ")";
        }
        resilience.addRow({"churn-shed requests", churn_cell});
        resilience.addRow({"devices with churn loss",
                           std::to_string(churn_shed_by_device.size())});
        std::string outage_cell = std::to_string(outage_records);
        if (fleet_records > 0) {
            outage_cell += " ("
                + Table::pct(static_cast<double>(outage_records)
                             / static_cast<double>(fleet_records))
                + ")";
        }
        resilience.addRow({"edge outage records", outage_cell});
        resilience.print(std::cout);
    }
    return 0;
}
