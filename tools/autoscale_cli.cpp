/**
 * @file
 * Command-line front-end to the AutoScale library. Lets a user explore
 * the edge-cloud decision problem without writing code:
 *
 *   autoscale_cli devices
 *   autoscale_cli workloads
 *   autoscale_cli characterize --device Mi8Pro
 *   autoscale_cli decide --device Mi8Pro --network "MobileNet v3" \
 *       --co-cpu 0.8 --rssi-wlan -85
 *   autoscale_cli train --device Mi8Pro --scenarios S1,S2,D3 \
 *       --runs 400 --out qtable.txt
 *   autoscale_cli evaluate --device Mi8Pro --qtable qtable.txt \
 *       --scenarios S1,S4 --csv
 */

#include <algorithm>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/fixed.h"
#include "baselines/oracle.h"
#include "core/scheduler.h"
#include "dnn/model_zoo.h"
#include "harness/experiment.h"
#include "harness/parallel.h"
#include "obs/json.h"
#include "obs/obs_output.h"
#include "platform/device_zoo.h"
#include "scenario/apply.h"
#include "scenario/load.h"
#include "serve/fleet.h"
#include "serve/server.h"
#include "sim/simulator.h"
#include "util/args.h"
#include "util/atomic_file.h"
#include "util/logging.h"
#include "util/table.h"

namespace {

using namespace autoscale;

env::EnvState
envFromArgs(const Args &args)
{
    env::EnvState env;
    env.coCpuUtil = args.getDouble("--co-cpu", 0.0);
    env.coMemUtil = args.getDouble("--co-mem", 0.0);
    env.rssiWlanDbm = args.getDouble("--rssi-wlan", -55.0);
    env.rssiP2pDbm = args.getDouble("--rssi-p2p", -55.0);
    return env;
}

std::vector<env::ScenarioId>
scenariosFromArgs(const Args &args)
{
    const std::string spec = args.get("--scenarios", "S1,S2,S3,S4,S5");
    std::map<std::string, env::ScenarioId> by_name;
    for (const env::ScenarioId id : env::allScenarios()) {
        by_name.emplace(env::scenarioName(id), id);
    }
    std::vector<env::ScenarioId> ids;
    std::stringstream stream(spec);
    std::string token;
    while (std::getline(stream, token, ',')) {
        const auto it = by_name.find(token);
        if (it == by_name.end()) {
            fatal("unknown scenario '" + token + "' (use S1-S5, D1-D4)");
        }
        ids.push_back(it->second);
    }
    if (ids.empty()) {
        fatal("--scenarios parsed to an empty list");
    }
    return ids;
}

/**
 * Fault plan from `--faults NAME` (none | blackout | flaky-wifi |
 * cloud-brownout) with optional `--fault-seed N` override.
 */
fault::FaultPlan
faultsFromArgs(const Args &args)
{
    fault::FaultPlan plan =
        fault::FaultPlan::fromName(args.get("--faults", "none"));
    plan.seed = static_cast<std::uint64_t>(
        args.getInt("--fault-seed", static_cast<int>(plan.seed)));
    return plan;
}

/**
 * Strict numeric flag parsers for flags whose silent fallback would
 * change failure semantics (the retry/fault knobs): a present flag
 * whose value is missing, malformed, has trailing garbage, or
 * overflows is a usage error, not a default.
 */
double
strictDouble(const Args &args, const std::string &flag, double fallback)
{
    double value = fallback;
    if (args.parseDouble(flag, &value) == Args::ParseStatus::Malformed) {
        fatal(flag + " expects a number, got '" + args.get(flag) + "'");
    }
    return value;
}

int
strictInt(const Args &args, const std::string &flag, int fallback)
{
    int value = fallback;
    if (args.parseInt(flag, &value) == Args::ParseStatus::Malformed) {
        fatal(flag + " expects an integer, got '" + args.get(flag) + "'");
    }
    return value;
}

/** Basename of a scenario path, so banners stay checkout-independent. */
std::string
scenarioFileBase(const std::string &path)
{
    return path.substr(path.find_last_of('/') + 1);
}

/**
 * Load `--scenario FILE` (with `--variant N` selection when the file
 * sweeps) into a typed, validated spec. Returns nullopt for an empty
 * @p value. Every diagnostic prints before the fatal, so a broken
 * file reports all its problems in one run.
 */
std::optional<scenario::LoadedScenario>
loadScenarioArg(const Args &args, const std::string &value)
{
    if (value.empty()) {
        return std::nullopt;
    }
    scenario::Diagnostics diags;
    std::vector<scenario::LoadedScenario> loaded =
        scenario::loadScenarioFile(value, diags);
    if (!diags.ok()) {
        std::cerr << diags.render();
        fatal("invalid scenario file '" + value + "' ("
              + std::to_string(diags.diags().size()) + " error(s))");
    }
    int variant = strictInt(args, "--variant", -1);
    if (variant < 0) {
        if (loaded.size() > 1) {
            fatal("'" + value + "' expands to "
                  + std::to_string(loaded.size())
                  + " variants; pick one with --variant N "
                    "(scenario_lint --expand lists them)");
        }
        variant = 0;
    }
    if (variant >= static_cast<int>(loaded.size())) {
        fatal("--variant " + std::to_string(variant)
              + " out of range; '" + value + "' expands to "
              + std::to_string(loaded.size()) + " variant(s)");
    }
    return loaded[static_cast<std::size_t>(variant)];
}

/**
 * Fault plan under a (possibly absent) scenario file. A file that
 * declares fault content owns the plan — mixing it with a `--faults`
 * preset is a conflict, not a merge. `--fault-seed` still resolves
 * against `fault.seed` like any scalar.
 */
fault::FaultPlan
mergeFaults(const Args &args, const scenario::SettingsMerger &merge)
{
    const scenario::ScenarioSpec *spec = merge.spec();
    fault::FaultPlan plan;
    if (spec != nullptr && spec->faults.enabled()) {
        if (args.has("--faults")) {
            fatal("--faults conflicts with the fault sections of "
                  + spec->sourceFile
                  + " (drop the flag or the sections)");
        }
        plan = spec->faults;
    } else {
        plan = fault::FaultPlan::fromName(args.get("--faults", "none"));
    }
    plan.seed = merge.resolveSeed(
        "--fault-seed", "fault.seed",
        spec != nullptr ? spec->faults.seed : plan.seed, plan.seed);
    return plan;
}

/**
 * Table IV environment list: `--scenarios` flag vs the file's
 * `env.base`, conflict-checked as whole lists.
 */
std::vector<env::ScenarioId>
mergeScenarios(const Args &args, const scenario::SettingsMerger &merge)
{
    const scenario::ScenarioSpec *spec = merge.spec();
    if (spec == nullptr || !spec->isSet("env.base")) {
        return scenariosFromArgs(args);
    }
    if (args.has("--scenarios")) {
        const std::vector<env::ScenarioId> fromFlag =
            scenariosFromArgs(args);
        if (fromFlag != spec->envBases) {
            fatal("--scenarios " + args.get("--scenarios")
                  + " conflicts with env.base from " + spec->sourceFile
                  + " (drop the flag or change the file)");
        }
    }
    return spec->envBases;
}

/**
 * Retry policy from `--timeout-ms` / `--max-retries` / `--backoff-ms` /
 * `--backoff-mult`, resolved against the file's [retry] section. All
 * four fail fast on malformed or out-of-range values: a typo here
 * would silently change what "failure" costs.
 */
fault::RetryPolicy
retryFromArgs(const Args &args, const scenario::SettingsMerger &merge)
{
    const fault::RetryPolicy base = merge.spec() != nullptr
        ? merge.spec()->retry
        : fault::RetryPolicy{};
    fault::RetryPolicy retry;
    retry.timeoutMs = merge.resolveDouble(
        "--timeout-ms", "retry.timeout_ms", base.timeoutMs,
        retry.timeoutMs);
    retry.maxRetries = merge.resolveInt(
        "--max-retries", "retry.max_retries", base.maxRetries,
        retry.maxRetries);
    retry.backoffBaseMs = merge.resolveDouble(
        "--backoff-ms", "retry.backoff_ms", base.backoffBaseMs,
        retry.backoffBaseMs);
    retry.backoffMultiplier = merge.resolveDouble(
        "--backoff-mult", "retry.backoff_mult", base.backoffMultiplier,
        retry.backoffMultiplier);
    if (retry.timeoutMs <= 0.0) {
        fatal("--timeout-ms must be positive");
    }
    if (retry.maxRetries < 0) {
        fatal("--max-retries must be >= 0");
    }
    if (retry.backoffBaseMs < 0.0) {
        fatal("--backoff-ms must be >= 0");
    }
    if (retry.backoffMultiplier <= 0.0) {
        fatal("--backoff-mult must be positive");
    }
    return retry;
}

sim::InferenceSimulator
simFromArgs(const Args &args, const scenario::SettingsMerger &merge)
{
    const std::string device = merge.resolveString(
        "--device", "device.model",
        merge.spec() != nullptr ? merge.spec()->deviceModel : "",
        "Mi8Pro");
    sim::InferenceSimulator sim = sim::InferenceSimulator::makeDefault(
        platform::makePhone(device));
    // --direct bypasses the precomputed cost tables (DESIGN.md section
    // 13). Outcomes are bit-identical either way; this exists to
    // demonstrate that and to time the difference.
    if (args.has("--direct")) {
        sim.setUseCostCache(false);
    }
    return sim;
}

/** Flag-only simulator (commands without --scenario file support). */
sim::InferenceSimulator
simFromArgs(const Args &args)
{
    return simFromArgs(args, scenario::SettingsMerger(args, nullptr));
}

/**
 * Worker threads from `--jobs` (default: one per hardware thread).
 * Results are deterministic for every value; `--jobs 1` runs the exact
 * serial loop.
 */
int
jobsFromArgs(const Args &args)
{
    return std::max(1, args.getInt("--jobs", harness::defaultJobs()));
}

int
cmdDevices()
{
    Table table({"Device", "Tier", "Processors", "Actions"});
    for (const std::string &name : platform::phoneNames()) {
        const sim::InferenceSimulator sim =
            sim::InferenceSimulator::makeDefault(platform::makePhone(name));
        std::string procs;
        for (const platform::Processor *proc :
             sim.localDevice().processors()) {
            if (!procs.empty()) {
                procs += ", ";
            }
            procs += proc->name();
        }
        table.addRow({name,
                      platform::deviceTierName(sim.localDevice().tier()),
                      procs,
                      std::to_string(core::buildActionSpace(sim).size())});
    }
    table.print(std::cout);
    return 0;
}

int
cmdWorkloads()
{
    Table table({"Network", "Task", "CONV", "FC", "RC", "MACs (M)",
                 "QoS (ms)"});
    for (const auto &net : dnn::modelZoo()) {
        const sim::InferenceRequest request = sim::makeRequest(net);
        table.addRow({net.name(), dnn::taskName(net.task()),
                      std::to_string(net.numConv()),
                      std::to_string(net.numFc()),
                      std::to_string(net.numRc()),
                      Table::num(net.totalMacsMillions(), 0),
                      Table::num(request.qosMs, 1)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdCharacterize(const Args &args)
{
    const sim::InferenceSimulator sim = simFromArgs(args);
    const env::EnvState env = envFromArgs(args);
    baselines::OptOracle oracle(sim);
    std::cout << "Device: " << sim.localDevice().name() << "\n\n";
    Table table({"Network", "Optimal target", "Latency (ms)",
                 "Energy (mJ)", "PPW vs CPU FP32"});
    for (const auto &net : dnn::modelZoo()) {
        const sim::InferenceRequest request = sim::makeRequest(
            net, args.getDouble("--accuracy", 50.0));
        const sim::ExecutionTarget opt = oracle.optimalTarget(request, env);
        const sim::Outcome o = sim.expected(net, opt, env);
        const sim::ExecutionTarget cpu{
            sim::TargetPlace::Local, platform::ProcKind::MobileCpu,
            sim.localDevice().cpu().maxVfIndex(), dnn::Precision::FP32};
        const sim::Outcome baseline = sim.expected(net, cpu, env);
        table.addRow({net.name(), opt.label(),
                      Table::num(o.latencyMs, 1),
                      Table::num(o.energyJ * 1e3, 1),
                      Table::times(baseline.energyJ / o.energyJ, 1)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdDecide(const Args &args)
{
    const sim::InferenceSimulator sim = simFromArgs(args);
    const std::string network = args.get("--network", "MobileNet v3");
    const dnn::Network &net = dnn::findModel(network);
    const env::EnvState env = envFromArgs(args);
    const sim::InferenceRequest request =
        sim::makeRequest(net, args.getDouble("--accuracy", 50.0));

    baselines::OptOracle oracle(sim);
    std::cout << "Network: " << net.name() << " on "
              << sim.localDevice().name() << ", QoS "
              << Table::num(request.qosMs, 1) << " ms, accuracy target "
              << Table::num(request.accuracyTargetPct, 0) << "%\n"
              << "Environment: co-CPU "
              << Table::pct(env.coCpuUtil) << ", co-mem "
              << Table::pct(env.coMemUtil) << ", Wi-Fi "
              << Table::num(env.rssiWlanDbm, 0) << " dBm, Wi-Fi Direct "
              << Table::num(env.rssiP2pDbm, 0) << " dBm\n\n";

    // Rank the whole action space by expected energy under constraints.
    struct Row {
        std::string label;
        double latency;
        double energy;
        bool meets_qos;
        bool meets_accuracy;
    };
    std::vector<Row> rows;
    for (const auto &action : oracle.actions()) {
        const sim::Outcome o = sim.expected(net, action, env);
        if (!o.feasible) {
            continue;
        }
        rows.push_back({action.label(), o.latencyMs, o.energyJ,
                        o.latencyMs < request.qosMs,
                        o.accuracyPct >= request.accuracyTargetPct});
    }
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        const int ka = (a.meets_qos && a.meets_accuracy) ? 0 : 1;
        const int kb = (b.meets_qos && b.meets_accuracy) ? 0 : 1;
        return ka != kb ? ka < kb : a.energy < b.energy;
    });

    Table table({"Rank", "Target", "Latency (ms)", "Energy (mJ)",
                 "QoS", "Accuracy"});
    const int top = args.getInt("--top", 8);
    for (int i = 0; i < top && i < static_cast<int>(rows.size()); ++i) {
        const Row &row = rows[static_cast<std::size_t>(i)];
        table.addRow({std::to_string(i + 1), row.label,
                      Table::num(row.latency, 1),
                      Table::num(row.energy * 1e3, 1),
                      row.meets_qos ? "ok" : "VIOLATES",
                      row.meets_accuracy ? "ok" : "FAILS"});
    }
    table.print(std::cout);
    return 0;
}

int
cmdTrain(const Args &args)
{
    const std::optional<scenario::LoadedScenario> loaded =
        loadScenarioArg(args, args.get("--scenario"));
    const scenario::ScenarioSpec *spec =
        loaded ? &loaded->spec : nullptr;
    const scenario::SettingsMerger merge(args, spec);

    sim::InferenceSimulator sim = simFromArgs(args, merge);
    const std::vector<env::ScenarioId> scenarios =
        mergeScenarios(args, merge);
    const int runs = merge.resolveInt(
        "--runs", "workload.train_runs",
        spec != nullptr ? spec->trainRuns : 400, 400);
    const std::uint64_t seed = merge.resolveSeed(
        "--seed", "meta.seed", spec != nullptr ? spec->seed : 1, 1);
    const double accuracy = merge.resolveDouble(
        "--accuracy", "workload.accuracy_target_pct",
        spec != nullptr ? spec->accuracyTargetPct : 50.0, 50.0);

    obs::ObsOutput obs_out(obs::ObsConfig::fromArgs(args));
    if (obs_out.config().metering()) {
        sim.setObserver(&obs_out.metrics());
    }

    const fault::FaultPlan faults = mergeFaults(args, merge);
    const fault::RetryPolicy retry = retryFromArgs(args, merge);
    auto policy = harness::makeAutoScalePolicy(sim, seed);
    Rng rng(seed ^ 0x7ea1ULL);
    std::cout << "Training on " << sim.localDevice().name() << " across "
              << scenarios.size() << " scenario(s), " << runs
              << " runs per (network, scenario)";
    if (faults.enabled()) {
        std::cout << ", faults: " << faults.name;
    }
    std::cout << "...\n";
    harness::trainPolicy(*policy, sim, harness::allZooNetworks(),
                         scenarios, runs, rng, false, accuracy,
                         obs_out.context(), faults, retry);

    // Atomic replace: a crash (or a concurrent reader) never sees a
    // half-written table, and an existing file survives a failed write.
    const std::string out = args.get("--out", "qtable.txt");
    std::ostringstream buffer;
    policy->scheduler().saveQTable(buffer);
    std::string error;
    if (!atomicWriteFile(out, buffer.str(), &error)) {
        fatal("cannot write '" + out + "': " + error);
    }
    std::cout << "Q-table saved to " << out << " ("
              << policy->scheduler().agent().table().memoryBytes() / 1024
              << " KiB in memory)\n";
    obs_out.finalize(&std::cout);
    return 0;
}

int
cmdEvaluate(const Args &args)
{
    const std::optional<scenario::LoadedScenario> loaded =
        loadScenarioArg(args, args.get("--scenario"));
    const scenario::ScenarioSpec *spec =
        loaded ? &loaded->spec : nullptr;
    const scenario::SettingsMerger merge(args, spec);

    sim::InferenceSimulator sim = simFromArgs(args, merge);
    const std::vector<env::ScenarioId> scenarios =
        mergeScenarios(args, merge);
    const std::uint64_t seed = merge.resolveSeed(
        "--seed", "meta.seed", spec != nullptr ? spec->seed : 1, 1);
    const int trainRuns = merge.resolveInt(
        "--train-runs", "workload.train_runs",
        spec != nullptr ? spec->trainRuns : 400, 400);
    const double accuracy = merge.resolveDouble(
        "--accuracy", "workload.accuracy_target_pct",
        spec != nullptr ? spec->accuracyTargetPct : 50.0, 50.0);

    // The simulator-level counters commute (integer adds), so the
    // shared observer stays deterministic even with concurrent
    // comparator evaluation below.
    obs::ObsOutput obs_out(obs::ObsConfig::fromArgs(args));
    if (obs_out.config().metering()) {
        sim.setObserver(&obs_out.metrics());
    }

    const fault::FaultPlan faults = mergeFaults(args, merge);
    const fault::RetryPolicy retry = retryFromArgs(args, merge);

    auto autoscale_policy = harness::makeAutoScalePolicy(sim, seed);
    const std::string qtable = args.get("--qtable");
    if (!qtable.empty()) {
        std::ifstream file(qtable);
        if (!file) {
            fatal("cannot open '" + qtable + "'");
        }
        autoscale_policy->scheduler().loadQTable(file);
        std::cout << "Loaded Q-table from " << qtable << "\n";
    } else {
        Rng rng(seed ^ 0x7ea1ULL);
        std::cout << "No --qtable given; training in place...\n";
        harness::trainPolicy(*autoscale_policy, sim,
                             harness::allZooNetworks(), scenarios,
                             trainRuns, rng, false, accuracy, {}, faults,
                             retry);
    }
    autoscale_policy->setExploration(false);

    harness::EvalOptions options;
    options.runsPerCombo = args.getInt("--runs", 30);
    options.accuracyTargetPct = accuracy;
    options.seed = seed + 1;
    options.faults = faults;
    options.retry = retry;

    // The baseline policies are independent of each other and each
    // evaluation derives its randomness from options.seed alone, so
    // they fan out across --jobs workers; every policy's numbers are
    // identical to the serial run. Each task builds its own policy
    // (policies accumulate state) and shares only the simulator.
    struct Baseline {
        std::string name;
        std::function<std::unique_ptr<baselines::SchedulingPolicy>()>
            make;
    };
    const std::vector<Baseline> comparators = {
        {"Edge (CPU FP32)",
         [&] { return baselines::makeEdgeCpuFp32Policy(sim); }},
        {"Edge (Best)", [&] { return baselines::makeEdgeBestPolicy(sim); }},
        {"Cloud", [&] { return baselines::makeCloudPolicy(sim); }},
        {"Connected Edge",
         [&] { return baselines::makeConnectedEdgePolicy(sim); }},
        {"Opt", [&] { return baselines::makeOptOracle(sim); }},
    };
    // When observability is on, each concurrent comparator records
    // into private sinks; they are merged into the run-level sinks in
    // listed order (then AutoScale last), so the exported trace and
    // metrics are byte-identical for every --jobs value.
    struct PolicyResult {
        harness::RunStats stats;
        obs::TraceRecorder trace;
        obs::MetricsRegistry metrics;
    };
    const std::vector<PolicyResult> comparator_results =
        harness::parallelIndexed(
            comparators.size(), jobsFromArgs(args), [&](std::size_t i) {
                auto policy = comparators[i].make();
                PolicyResult result;
                harness::EvalOptions task_options = options;
                if (obs_out.config().tracing()) {
                    task_options.obs.trace = &result.trace;
                }
                if (obs_out.config().metering()) {
                    task_options.obs.metrics = &result.metrics;
                }
                result.stats = harness::evaluatePolicy(
                    *policy, sim, harness::allZooNetworks(), scenarios,
                    task_options);
                return result;
            });
    for (const PolicyResult &result : comparator_results) {
        if (obs_out.config().tracing()) {
            obs_out.trace().append(result.trace);
        }
        if (obs_out.config().metering()) {
            obs_out.metrics().merge(result.metrics);
        }
    }

    // AutoScale runs serially after the merge, so it records straight
    // into the run-level sinks.
    options.obs = obs_out.context();
    const harness::RunStats autoscale_stats = harness::evaluatePolicy(
        *autoscale_policy, sim, harness::allZooNetworks(), scenarios,
        options);

    Table table({"Policy", "PPW (1/J)", "Mean energy (mJ)",
                 "QoS violations", "Opt-match"});
    auto add = [&](const std::string &name,
                   const harness::RunStats &stats) {
        table.addRow({name, Table::num(stats.ppw(), 2),
                      Table::num(stats.meanEnergyJ() * 1e3, 2),
                      Table::pct(stats.qosViolationRatio()),
                      Table::pct(stats.predictionAccuracy())});
    };
    for (std::size_t i = 0; i < comparators.size(); ++i) {
        add(comparators[i].name, comparator_results[i].stats);
    }
    add("AutoScale", autoscale_stats);

    if (args.has("--csv")) {
        table.printCsv(std::cout);
    } else {
        table.print(std::cout);
    }

    if (faults.enabled()) {
        std::cout << "\nFault injection (" << faults.name << ", seed "
                  << faults.seed << ", timeout "
                  << Table::num(retry.timeoutMs, 0) << " ms, "
                  << retry.maxRetries << " retries):\n";
        Table fault_table({"Policy", "Retries", "Timeouts", "Drops",
                           "Fallbacks", "Wasted (mJ)"});
        auto add_faults = [&](const std::string &name,
                              const harness::RunStats &stats) {
            fault_table.addRow(
                {name, std::to_string(stats.faultRetries()),
                 std::to_string(stats.faultTimeouts()),
                 std::to_string(stats.faultDrops()),
                 Table::pct(stats.faultFallbackRatio()),
                 Table::num(stats.faultWastedEnergyJ() * 1e3, 1)});
        };
        for (std::size_t i = 0; i < comparators.size(); ++i) {
            add_faults(comparators[i].name, comparator_results[i].stats);
        }
        add_faults("AutoScale", autoscale_stats);
        if (args.has("--csv")) {
            fault_table.printCsv(std::cout);
        } else {
            fault_table.print(std::cout);
        }
    }
    obs_out.finalize(&std::cout);
    return 0;
}

int
cmdLoo(const Args &args)
{
    const std::optional<scenario::LoadedScenario> loaded =
        loadScenarioArg(args, args.get("--scenario"));
    const scenario::ScenarioSpec *spec =
        loaded ? &loaded->spec : nullptr;
    const scenario::SettingsMerger merge(args, spec);

    sim::InferenceSimulator sim = simFromArgs(args, merge);
    const std::vector<env::ScenarioId> scenarios =
        mergeScenarios(args, merge);
    const int jobs = jobsFromArgs(args);

    obs::ObsOutput obs_out(obs::ObsConfig::fromArgs(args));
    if (obs_out.config().metering()) {
        sim.setObserver(&obs_out.metrics());
    }

    harness::EvalOptions options;
    options.runsPerCombo = args.getInt("--runs", 30);
    options.looWarmupRuns = args.getInt("--warmup", 150);
    options.accuracyTargetPct = merge.resolveDouble(
        "--accuracy", "workload.accuracy_target_pct",
        spec != nullptr ? spec->accuracyTargetPct : 50.0, 50.0);
    options.seed = merge.resolveSeed(
        "--seed", "meta.seed", spec != nullptr ? spec->seed : 1, 1);
    options.jobs = jobs;
    options.obs = obs_out.context();
    options.faults = mergeFaults(args, merge);
    options.retry = retryFromArgs(args, merge);

    std::cout << "Leave-one-out over " << harness::allZooNetworks().size()
              << " workloads on " << sim.localDevice().name() << ", "
              << scenarios.size() << " scenario(s), " << jobs
              << " worker(s)...\n";
    const harness::RunStats loo = harness::evaluateAutoScaleLoo(
        sim, harness::allZooNetworks(), scenarios,
        merge.resolveInt("--train-runs", "workload.train_runs",
                         spec != nullptr ? spec->trainRuns : 400, 400),
        options);

    Table table({"Metric", "Value"});
    table.addRow({"Evaluated inferences", std::to_string(loo.count())});
    table.addRow({"PPW (1/J)", Table::num(loo.ppw(), 2)});
    table.addRow({"Mean energy (mJ)",
                  Table::num(loo.meanEnergyJ() * 1e3, 2)});
    table.addRow({"QoS violations", Table::pct(loo.qosViolationRatio())});
    table.addRow({"Opt-match", Table::pct(loo.predictionAccuracy())});
    table.addRow({"Near-optimal (1%)",
                  Table::pct(loo.nearOptimalRatio())});
    if (options.faults.enabled()) {
        table.addRow({"Fault retries",
                      std::to_string(loo.faultRetries())});
        table.addRow({"Fault timeouts",
                      std::to_string(loo.faultTimeouts())});
        table.addRow({"Fault drops", std::to_string(loo.faultDrops())});
        table.addRow({"Fault fallbacks",
                      Table::pct(loo.faultFallbackRatio())});
        table.addRow({"Fault wasted energy (mJ)",
                      Table::num(loo.faultWastedEnergyJ() * 1e3, 1)});
    }
    if (args.has("--csv")) {
        table.printCsv(std::cout);
    } else {
        table.print(std::cout);
    }
    obs_out.finalize(&std::cout);
    return 0;
}

/** Single scenario from @p flag ("S1".."D4"). */
env::ScenarioId
scenarioFromArg(const Args &args, const char *flag, const char *fallback)
{
    const std::string name = args.get(flag, fallback);
    for (const env::ScenarioId id : env::allScenarios()) {
        if (name == env::scenarioName(id)) {
            return id;
        }
    }
    fatal("unknown scenario '" + name + "' (use S1-S5, D1-D4)");
}

int
cmdServe(const Args &args)
{
    // `--scenario` is dual-mode on serve: a Table IV name (S1..D4)
    // keeps its historical meaning; anything else is a scenario file
    // path (scenarios/*.scn).
    const std::string scenarioArg = args.get("--scenario", "D3");
    bool isTableIvName = false;
    for (const env::ScenarioId id : env::allScenarios()) {
        if (scenarioArg == env::scenarioName(id)) {
            isTableIvName = true;
            break;
        }
    }
    const std::optional<scenario::LoadedScenario> loaded =
        isTableIvName ? std::nullopt : loadScenarioArg(args, scenarioArg);
    const scenario::ScenarioSpec *spec =
        loaded ? &loaded->spec : nullptr;
    const scenario::SettingsMerger merge(args, spec);

    sim::InferenceSimulator sim = simFromArgs(args, merge);
    obs::ObsOutput obs_out(obs::ObsConfig::fromArgs(args));
    if (obs_out.config().metering()) {
        sim.setObserver(&obs_out.metrics());
    }

    serve::ServeConfig config;
    if (spec != nullptr) {
        if (spec->envBases.size() != 1) {
            fatal("serve replays one environment, but " + scenarioArg
                  + " lists " + std::to_string(spec->envBases.size())
                  + " env.base entries (sweep them with [variant])");
        }
        config.scenario = spec->envBases.front();
    } else {
        config.scenario = scenarioFromArg(args, "--scenario", "D3");
    }
    config.faults = mergeFaults(args, merge);
    config.retry = retryFromArgs(args, merge);
    config.totalRequests = merge.resolveInt(
        "--requests", "workload.requests",
        spec != nullptr ? spec->requests : 1000, 1000);
    if (config.totalRequests <= 0) {
        fatal("--requests must be positive");
    }
    config.policyName = args.get("--policy", "autoscale");
    config.networkFilter = merge.resolveString(
        "--network", "workload.network",
        spec != nullptr ? spec->network : "", "");
    config.accuracyTargetPct = merge.resolveDouble(
        "--accuracy", "workload.accuracy_target_pct",
        spec != nullptr ? spec->accuracyTargetPct : 50.0, 50.0);
    config.seed = merge.resolveSeed(
        "--seed", "meta.seed", spec != nullptr ? spec->seed : 1, 1);
    config.trainRunsPerCombo = merge.resolveInt(
        "--train-runs", "workload.train_runs",
        spec != nullptr ? spec->trainRuns : 40, 40);
    config.qtablePath = args.get("--qtable");
    config.checkpointPath = args.get("--checkpoint");
    config.checkpointIntervalRequests =
        args.getInt("--checkpoint-interval", 100);
    config.resume = args.has("--resume");

    config.batchSize = strictInt(args, "--batch", config.batchSize);
    if (config.batchSize < 0) {
        fatal("--batch must be >= 0 (0 runs the scalar reference loop)");
    }

    config.admission.maxDepth = merge.resolveInt(
        "--queue-depth", "qos.queue_depth",
        spec != nullptr ? spec->queueDepth : 64, 64);
    if (config.admission.maxDepth <= 0) {
        fatal("--queue-depth must be positive");
    }
    config.admission.degradeDepth = merge.resolveInt(
        "--degrade-depth", "qos.degrade_depth",
        spec != nullptr ? spec->degradeDepth : 8, 8);

    const std::string breaker = args.get("--breaker", "on");
    if (breaker == "on") {
        config.breakerEnabled = true;
    } else if (breaker == "off") {
        config.breakerEnabled = false;
    } else {
        fatal("--breaker expects 'on' or 'off', got '" + breaker + "'");
    }
    config.breaker.openBaseMs = strictDouble(
        args, "--breaker-open-ms", config.breaker.openBaseMs);
    if (config.breaker.openBaseMs <= 0.0) {
        fatal("--breaker-open-ms must be positive");
    }
    config.breaker.halfOpenSuccesses = strictInt(
        args, "--breaker-probe-successes", config.breaker.halfOpenSuccesses);
    if (config.breaker.halfOpenSuccesses <= 0) {
        fatal("--breaker-probe-successes must be positive");
    }

    // Arrival rate: either absolute (--rate-hz) or as a multiple of the
    // server's nominal local-only capacity (--rate-x; 2.0 = sustained
    // 2x overload).
    std::vector<const dnn::Network *> networks;
    for (const auto &network : dnn::modelZoo()) {
        if (config.networkFilter.empty()
            || network.name() == config.networkFilter) {
            networks.push_back(&network);
        }
    }
    if (networks.empty()) {
        fatal("unknown network '" + config.networkFilter + "'");
    }
    const double nominal_ms = serve::nominalServiceMs(
        sim, networks, config.accuracyTargetPct);
    // Absolute (--rate-hz / arrival.rate_rps) and relative (--rate-x /
    // arrival.rate_x) spellings are one setting: crossing a flag of
    // one spelling with a file key of the other is a conflict.
    const bool fileRps = merge.fileSets("arrival.rate_rps");
    const bool fileX = merge.fileSets("arrival.rate_x");
    if (args.has("--rate-hz") && fileX) {
        fatal("--rate-hz conflicts with arrival.rate_x from "
              + spec->sourceFile + " (drop one spelling)");
    }
    if (args.has("--rate-x") && fileRps) {
        fatal("--rate-x conflicts with arrival.rate_rps from "
              + spec->sourceFile + " (drop one spelling)");
    }
    double rate_hz = 0.0;
    if (args.has("--rate-hz") || fileRps) {
        rate_hz = merge.resolveDouble(
            "--rate-hz", "arrival.rate_rps",
            spec != nullptr ? spec->arrival.rateRps : 0.0, 0.0);
    } else {
        rate_hz = merge.resolveDouble(
                      "--rate-x", "arrival.rate_x",
                      spec != nullptr ? spec->arrival.rateX : 2.0, 2.0)
            * 1000.0 / nominal_ms;
    }
    if (rate_hz <= 0.0) {
        fatal("--rate-hz/--rate-x must be positive");
    }
    config.arrival.ratePerSec = rate_hz;
    config.arrival.burstPeriodMs = merge.resolveDouble(
        "--burst-period-ms", "arrival.burst_period_ms",
        spec != nullptr ? spec->arrival.burstPeriodMs : 0.0,
        config.arrival.burstPeriodMs);
    config.arrival.burstDurationMs = merge.resolveDouble(
        "--burst-ms", "arrival.burst_ms",
        spec != nullptr ? spec->arrival.burstMs : 0.0,
        config.arrival.burstDurationMs);
    config.arrival.burstMultiplier = merge.resolveDouble(
        "--burst-mult", "arrival.burst_mult",
        spec != nullptr ? spec->arrival.burstMult : 1.0,
        config.arrival.burstMultiplier);
    if (spec != nullptr) {
        // Diurnal modulation is scenario-file-only (no flag spelling).
        config.arrival.diurnalPeriodMs = spec->arrival.diurnalPeriodMs;
        config.arrival.diurnalAmplitude = spec->arrival.diurnalAmplitude;
    }

    // --- Fleet mode: --fleet N > 1 drives N devices through the
    // shared-infrastructure event loop. --fleet 1 (the default) takes
    // the single-device path below, byte-identical to pre-fleet serve.
    const int fleetDevices = merge.resolveInt(
        "--fleet", "device.population",
        spec != nullptr ? spec->population : 1, 1);
    if (fleetDevices < 1) {
        fatal("--fleet must be >= 1");
    }
    // Flags that only mean something in one serving mode fail loudly
    // in the other instead of being silently ignored: a typo'd or
    // misplaced knob must never change which run gets reproduced.
    if (config.resume && config.checkpointPath.empty()) {
        fatal("--resume requires --checkpoint FILE");
    }
    if (config.checkpointIntervalRequests <= 0) {
        fatal("--checkpoint-interval must be positive");
    }
    if (fleetDevices <= 1) {
        for (const char *fleetOnly :
             {"--epoch-ms", "--merge-epochs", "--checkpoint-every",
              "--halt-after-epochs", "--churn-crash-prob",
              "--churn-leave-prob", "--churn-down-epochs",
              "--churn-initial-devices", "--churn-join-every",
              "--outage-period-ms", "--outage-ms",
              "--fleet-legacy-devices", "--fleet-memory"}) {
            if (args.has(fleetOnly)) {
                fatal(std::string(fleetOnly)
                      + " requires fleet serving (--fleet N > 1)");
            }
        }
    }
    if (fleetDevices > 1) {
        if (args.has("--checkpoint-interval")) {
            fatal("--checkpoint-interval is per-request (single-device "
                  "serving); fleets checkpoint at epoch barriers "
                  "(--checkpoint-every)");
        }
        serve::FleetConfig fleet;
        fleet.serve = config;
        fleet.devices = fleetDevices;
        fleet.shards = strictInt(args, "--shards", fleet.shards);
        if (fleet.shards < 1) {
            fatal("--shards must be >= 1");
        }
        fleet.jobs = args.getInt("--jobs", 0);
        fleet.qMode = serve::qTableModeFromName(merge.resolveString(
            "--q-mode", "fleet.q_mode",
            spec != nullptr ? spec->fleet.qMode : "per-device",
            "per-device"));
        fleet.federatedMergeEpochs = merge.resolveInt(
            "--merge-epochs", "fleet.merge_epochs",
            spec != nullptr ? spec->fleet.mergeEpochs : 8,
            fleet.federatedMergeEpochs);
        if (fleet.federatedMergeEpochs < 1) {
            fatal("--merge-epochs must be >= 1");
        }
        fleet.epochMs = merge.resolveDouble(
            "--epoch-ms", "fleet.epoch_ms",
            spec != nullptr ? spec->fleet.epochMs : 250.0,
            fleet.epochMs);
        if (fleet.epochMs <= 0.0) {
            fatal("--epoch-ms must be positive");
        }
        const serve::SharedInfraConfig infraSpec = spec != nullptr
            ? spec->infra
            : serve::SharedInfraConfig{};
        fleet.infra.edgeCapacity = merge.resolveDouble(
            "--edge-capacity", "infra.edge_capacity",
            infraSpec.edgeCapacity, fleet.infra.edgeCapacity);
        fleet.infra.wifiCapacity = merge.resolveDouble(
            "--wifi-capacity", "infra.wifi_capacity",
            infraSpec.wifiCapacity, fleet.infra.wifiCapacity);
        fleet.infra.contention = merge.resolveDouble(
            "--contention", "infra.contention", infraSpec.contention,
            fleet.infra.contention);
        fleet.infra.brownoutPeriodMs = merge.resolveDouble(
            "--brownout-period-ms", "infra.brownout_period_ms",
            infraSpec.brownoutPeriodMs, fleet.infra.brownoutPeriodMs);
        fleet.infra.brownoutDurationMs = merge.resolveDouble(
            "--brownout-ms", "infra.brownout_ms",
            infraSpec.brownoutDurationMs, fleet.infra.brownoutDurationMs);
        fleet.infra.brownoutSlowdown = merge.resolveDouble(
            "--brownout-slowdown", "infra.brownout_slowdown",
            infraSpec.brownoutSlowdown, fleet.infra.brownoutSlowdown);
        fleet.infra.outagePeriodMs = merge.resolveDouble(
            "--outage-period-ms", "infra.outage_period_ms",
            infraSpec.outagePeriodMs, fleet.infra.outagePeriodMs);
        fleet.infra.outageDurationMs = merge.resolveDouble(
            "--outage-ms", "infra.outage_ms",
            infraSpec.outageDurationMs, fleet.infra.outageDurationMs);
        if (fleet.infra.outagePeriodMs < 0.0
            || fleet.infra.outageDurationMs < 0.0) {
            fatal("--outage-period-ms/--outage-ms must be >= 0");
        }
        if (fleet.infra.outagePeriodMs > 0.0
            && fleet.infra.outageDurationMs > fleet.infra.outagePeriodMs) {
            fatal("--outage-ms must not exceed --outage-period-ms");
        }

        // Churn schedule (DESIGN.md §17). ChurnProcess re-validates,
        // but the CLI fatals first so the message names the flag.
        const serve::ChurnConfig churnSpec =
            spec != nullptr ? spec->churn : serve::ChurnConfig{};
        fleet.churn.crashProb = merge.resolveDouble(
            "--churn-crash-prob", "churn.crash_prob",
            churnSpec.crashProb, fleet.churn.crashProb);
        fleet.churn.leaveProb = merge.resolveDouble(
            "--churn-leave-prob", "churn.leave_prob",
            churnSpec.leaveProb, fleet.churn.leaveProb);
        if (fleet.churn.crashProb < 0.0 || fleet.churn.crashProb > 1.0
            || fleet.churn.leaveProb < 0.0 || fleet.churn.leaveProb > 1.0) {
            fatal("--churn-crash-prob/--churn-leave-prob must be in [0, 1]");
        }
        if (fleet.churn.crashProb + fleet.churn.leaveProb > 1.0) {
            fatal("--churn-crash-prob + --churn-leave-prob must not "
                  "exceed 1");
        }
        fleet.churn.downEpochs = merge.resolveInt(
            "--churn-down-epochs", "churn.down_epochs",
            churnSpec.downEpochs, fleet.churn.downEpochs);
        if (fleet.churn.downEpochs < 1) {
            fatal("--churn-down-epochs must be >= 1");
        }
        fleet.churn.initialDevices = merge.resolveInt(
            "--churn-initial-devices", "churn.initial_devices",
            churnSpec.initialDevices, fleet.churn.initialDevices);
        if (fleet.churn.initialDevices < 0
            || fleet.churn.initialDevices > fleet.devices) {
            fatal("--churn-initial-devices must be in [0, --fleet N]");
        }
        fleet.churn.joinEveryEpochs = merge.resolveInt(
            "--churn-join-every", "churn.join_every_epochs",
            churnSpec.joinEveryEpochs, fleet.churn.joinEveryEpochs);
        if (fleet.churn.joinEveryEpochs < 1) {
            fatal("--churn-join-every must be >= 1");
        }

        // Fleet checkpointing: serve.checkpointPath/resume carry over
        // verbatim; runFleet interprets them as the epoch-barrier
        // manifest (fleet_checkpoint.h), not a per-request checkpoint.
        fleet.checkpointEveryEpochs = strictInt(
            args, "--checkpoint-every", fleet.checkpointEveryEpochs);
        if (fleet.checkpointEveryEpochs < 1) {
            fatal("--checkpoint-every must be >= 1");
        }
        if (args.has("--checkpoint-every")
            && config.checkpointPath.empty()) {
            fatal("--checkpoint-every requires --checkpoint FILE");
        }
        fleet.haltAfterEpochs = strictInt(
            args, "--halt-after-epochs", fleet.haltAfterEpochs);
        if (args.has("--halt-after-epochs")) {
            if (fleet.haltAfterEpochs < 1) {
                fatal("--halt-after-epochs must be >= 1");
            }
            if (config.checkpointPath.empty()) {
                fatal("--halt-after-epochs requires --checkpoint FILE");
            }
        }
        const std::string qtableOut = args.get("--fleet-qtable-out");
        fleet.collectQTables = !qtableOut.empty();
        // --fleet-legacy-devices drops to the per-device construction
        // (DESIGN.md §18); output is byte-identical either way — the
        // flag exists for memory/throughput comparisons and as the
        // escape hatch while the compact path beds in.
        fleet.compactDevices = !args.has("--fleet-legacy-devices");
        fleet.reportMemory = args.has("--fleet-memory");

        if (spec != nullptr) {
            std::cout << "Scenario: " << spec->name << " ("
                      << scenarioFileBase(spec->sourceFile) << ")\n";
        }
        std::cout << "Serving fleet of " << fleet.devices << " devices ("
                  << config.totalRequests << " arrivals each) on "
                  << sim.localDevice().name() << ", scenario "
                  << env::scenarioName(config.scenario) << ", q-mode "
                  << serve::qTableModeName(fleet.qMode) << ", "
                  << fleet.shards << " shards...\n";
        const serve::FleetStats stats =
            serve::runFleet(sim, fleet, obs_out.context());
        if (stats.halted) {
            // Simulated crash (--halt-after-epochs): like a SIGKILL at
            // the barrier, nothing is finalized or exported — only the
            // fleet manifest survives for a later --resume.
            std::cout << "Fleet halted after " << stats.epochs
                      << " epochs (fleet checkpoint at "
                      << config.checkpointPath << ")\n";
            return 0;
        }
        serve::printFleetReport(std::cout, fleet, stats);
        if (!qtableOut.empty()) {
            std::ofstream out(qtableOut);
            if (!out) {
                fatal("cannot write '" + qtableOut + "'");
            }
            out << stats.qtableDump;
        }
        obs_out.finalize(&std::cout);
        // Appended after the trace proper so the decision-event bytes
        // stay identical with or without --fleet-memory; trace_summary
        // picks the record up, older readers skip it as an unknown
        // non-decision line.
        if (fleet.reportMemory && obs_out.config().tracing()
            && obs_out.config().traceFormat == obs::TraceFormat::Jsonl) {
            std::ofstream trace(obs_out.config().tracePath,
                                std::ios::app);
            trace << "{\"fleet_memory\":true,\"devices\":"
                  << fleet.devices << ",\"peak_rss_bytes\":"
                  << stats.peakRssBytes << ",\"bytes_per_device\":"
                  << obs::jsonNumber(stats.bytesPerDevice) << "}\n";
        }
        return 0;
    }

    if (spec != nullptr) {
        std::cout << "Scenario: " << spec->name << " ("
                  << scenarioFileBase(spec->sourceFile) << ")\n";
    }
    std::cout << "Serving " << config.totalRequests << " arrivals on "
              << sim.localDevice().name() << ", scenario "
              << env::scenarioName(config.scenario) << ", rate "
              << Table::num(rate_hz, 1) << " req/s (nominal capacity "
              << Table::num(1000.0 / nominal_ms, 1) << " req/s)";
    if (config.faults.enabled()) {
        std::cout << ", faults: " << config.faults.name;
    }
    std::cout << ", breaker " << (config.breakerEnabled ? "on" : "off")
              << "...\n";

    const serve::ServeStats stats =
        serve::runServe(sim, config, obs_out.context());
    serve::printServeReport(std::cout, config, stats);
    obs_out.finalize(&std::cout);
    return 0;
}

int
usage()
{
    std::cout <<
        "autoscale_cli — AutoScale (MICRO 2020) reproduction CLI\n\n"
        "Commands:\n"
        "  devices                      list the device fleet\n"
        "  workloads                    list the Table III workloads\n"
        "  characterize --device D      optimal target per workload\n"
        "  decide --device D --network N [--co-cpu F] [--co-mem F]\n"
        "         [--rssi-wlan DBM] [--rssi-p2p DBM] [--accuracy PCT]\n"
        "         [--top K]             rank execution targets\n"
        "  train --device D [--scenarios S1,S2,...] [--runs N]\n"
        "        [--seed N] [--out FILE]\n"
        "  evaluate --device D [--qtable FILE] [--scenarios ...]\n"
        "           [--runs N] [--train-runs N] [--jobs N] [--csv]\n"
        "  loo --device D [--scenarios ...] [--runs N] [--train-runs N]\n"
        "      [--warmup N] [--seed N] [--jobs N] [--csv]\n"
        "  serve --device D [--scenario S] [--requests N]\n"
        "        [--rate-x F | --rate-hz F] [--burst-period-ms F]\n"
        "        [--burst-ms F] [--burst-mult F] [--queue-depth N]\n"
        "        [--degrade-depth N] [--breaker on|off]\n"
        "        [--breaker-open-ms F] [--breaker-probe-successes N]\n"
        "        [--checkpoint FILE] [--checkpoint-interval N] [--resume]\n"
        "        [--qtable FILE] [--train-runs N] [--network NAME]\n"
        "        [--policy autoscale|cloud|connected-edge|edge-best|\n"
        "         edge-cpu]\n"
        "        [--batch N]           decision-path batch size\n"
        "                              (default 64; 0 = scalar reference\n"
        "                              loop; every value produces\n"
        "                              byte-identical output)\n"
        "        [--seed N]            online serving loop: stochastic\n"
        "                              arrivals, admission control,\n"
        "                              circuit breakers, crash-safe\n"
        "                              Q-table checkpoints\n"
        "  serve --fleet N              fleet mode: N devices contending\n"
        "        [--shards N]          work partitions (output-invariant,\n"
        "                              default 4)\n"
        "        [--jobs N]            worker threads\n"
        "        [--q-mode per-device|shared|federated]\n"
        "        [--merge-epochs N]    federated merge period (default 8)\n"
        "        [--epoch-ms F]        contention barrier interval\n"
        "                              (default 250)\n"
        "        [--edge-capacity F]   shared edge slots (default 4)\n"
        "        [--wifi-capacity F]   concurrent transfers before\n"
        "                              congestion (default 8)\n"
        "        [--contention F]      demand multiplier (default 1)\n"
        "        [--brownout-period-ms F] [--brownout-ms F]\n"
        "        [--brownout-slowdown F]  shared cloud brownout windows\n"
        "        [--outage-period-ms F] [--outage-ms F]\n"
        "                              edge-server outage windows\n"
        "        [--churn-crash-prob P] [--churn-leave-prob P]\n"
        "        [--churn-down-epochs N]  per-device per-epoch churn\n"
        "        [--churn-initial-devices N] [--churn-join-every N]\n"
        "                              staggered fleet ramp-up\n"
        "        [--checkpoint FILE] [--checkpoint-every N] [--resume]\n"
        "                              epoch-barrier fleet manifest +\n"
        "                              checkpoint-verified replay resume\n"
        "        [--halt-after-epochs N]  simulate a crash at a barrier\n"
        "        [--fleet-qtable-out FILE] dump all final Q-tables\n"
        "        [--fleet-memory]      report peak RSS and bytes/device\n"
        "                              (and append a fleet_memory record\n"
        "                              to a JSONL --trace)\n"
        "        [--fleet-legacy-devices] per-device construction instead\n"
        "                              of the compact shared-plan layout\n"
        "                              (byte-identical output; for\n"
        "                              comparisons)\n\n"
        "Scenario files (train, evaluate, loo, serve):\n"
        "  --scenario FILE              load a declarative .scn scenario\n"
        "                               (on serve, a Table IV name S1-D4\n"
        "                               keeps its classic meaning)\n"
        "  --variant N                  pick one expansion of a file\n"
        "                               with a [variant] sweep\n"
        "  Flags override file values; a flag and a file key set to\n"
        "  DIFFERENT values is a fatal conflict. Validate and expand\n"
        "  files with the scenario_lint tool; library lives in\n"
        "  scenarios/.\n\n"
        "Fault injection (train, evaluate, loo, serve):\n"
        "  --faults NAME                none (default), blackout,\n"
        "                               flaky-wifi, or cloud-brownout\n"
        "  --fault-seed N               fault-process RNG seed\n"
        "  --timeout-ms F               per-attempt remote deadline\n"
        "                               (default 300)\n"
        "  --max-retries N              remote retries before the forced\n"
        "                               local fallback (default 2)\n"
        "  --backoff-ms F               idle gap before the first retry\n"
        "                               (default 25)\n"
        "  --backoff-mult F             backoff growth per retry\n"
        "                               (default 2)\n\n"
        "Observability (train, evaluate, loo, serve):\n"
        "  --trace FILE                 record one structured event per\n"
        "                               inference decision\n"
        "  --trace-format jsonl|chrome  JSON Lines (default) or Chrome\n"
        "                               about://tracing format\n"
        "  --metrics FILE               dump counters/gauges/histograms\n"
        "  (summarize JSONL traces with the trace_summary tool)\n\n"
        "Devices: Mi8Pro, \"Galaxy S10e\", \"Moto X Force\"\n"
        "Scenarios: S1-S5 (static), D1-D4 (dynamic), per Table IV\n"
        "--direct: bypass the precomputed cost-model tables and walk\n"
        "the layer model per decision (bit-identical results; exists\n"
        "to prove it, and for bench_decision_path's perf gate).\n"
        "--jobs N: worker threads (default: hardware concurrency).\n"
        "Results — including --trace and --metrics files — are\n"
        "bit-identical for every --jobs value; --jobs 1 runs fully\n"
        "serial.\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        return usage();
    }
    const Args args(argc, argv);
    // Repeated flags resolve last-one-wins, but a CONFLICTING repeat of
    // a determinism-critical flag is fatal: silently dropping one value
    // would change which run the user thinks they reproduced.
    for (const char *flag : {"--jobs", "--seed", "--seeds"}) {
        if (args.hasConflictingDuplicate(flag)) {
            fatal(std::string(flag)
                  + " given multiple times with conflicting values");
        }
    }
    const std::string command = argv[1];
    if (command == "devices") {
        return cmdDevices();
    }
    if (command == "workloads") {
        return cmdWorkloads();
    }
    if (command == "characterize") {
        return cmdCharacterize(args);
    }
    if (command == "decide") {
        return cmdDecide(args);
    }
    if (command == "train") {
        return cmdTrain(args);
    }
    if (command == "evaluate") {
        return cmdEvaluate(args);
    }
    if (command == "loo") {
        return cmdLoo(args);
    }
    if (command == "serve") {
        return cmdServe(args);
    }
    return usage();
}
