/**
 * @file
 * Linter/canonicalizer for .scn scenario files (DESIGN.md §16):
 *
 *   scenario_lint FILE...          validate; print all diagnostics
 *   scenario_lint --all DIR        validate every *.scn under DIR
 *   scenario_lint --canon FILE     print the canonical form
 *   scenario_lint --expand FILE    list the [variant] expansion
 *
 * Exit status 0 iff every file validates. Diagnostics go to stderr as
 * `file:line: message`, one per problem — the same accumulated output
 * the CLI prints when `--scenario FILE` is invalid, because both run
 * the identical load path. Directory iteration is sorted, so output
 * order (and CI logs) are machine-independent.
 */

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/load.h"

namespace {

using namespace autoscale;

int
usage()
{
    std::cerr
        << "scenario_lint — validate, canonicalize, and expand .scn "
           "scenario files\n\n"
           "  scenario_lint FILE...       validate each file\n"
           "  scenario_lint --all DIR     validate every *.scn under "
           "DIR\n"
           "  scenario_lint --canon FILE  print the canonical form\n"
           "  scenario_lint --expand FILE print the variant expansion\n";
    return 2;
}

/** Validate one file; prints diagnostics; returns ok. */
bool
lintFile(const std::string &path, bool verbose)
{
    scenario::Diagnostics diags;
    const std::vector<scenario::LoadedScenario> loaded =
        scenario::loadScenarioFile(path, diags);
    if (!diags.ok()) {
        std::cerr << diags.render();
        std::cout << path << ": FAIL ("
                  << diags.diags().size() << " error(s))\n";
        return false;
    }
    if (verbose) {
        std::cout << path << ": ok (" << loaded.size() << " variant"
                  << (loaded.size() == 1 ? "" : "s") << ")\n";
    }
    return true;
}

int
cmdAll(const std::string &dir)
{
    std::error_code ec;
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".scn") {
            files.push_back(entry.path().string());
        }
    }
    if (ec) {
        std::cerr << "scenario_lint: cannot read directory '" << dir
                  << "': " << ec.message() << "\n";
        return 2;
    }
    if (files.empty()) {
        std::cerr << "scenario_lint: no .scn files under '" << dir
                  << "'\n";
        return 2;
    }
    std::sort(files.begin(), files.end());
    int failures = 0;
    for (const std::string &file : files) {
        if (!lintFile(file, true)) {
            ++failures;
        }
    }
    if (failures > 0) {
        std::cout << failures << " of " << files.size()
                  << " file(s) failed validation\n";
        return 1;
    }
    std::cout << "all " << files.size() << " file(s) ok\n";
    return 0;
}

int
cmdCanon(const std::string &path)
{
    scenario::Diagnostics diags;
    const scenario::Doc doc = scenario::parseScenarioFile(path, diags);
    if (diags.ok()) {
        // Canonical form is only defined for valid files.
        scenario::loadScenarioText(scenario::canonicalText(doc), path,
                                   diags);
    }
    if (!diags.ok()) {
        std::cerr << diags.render();
        return 1;
    }
    std::cout << scenario::canonicalText(doc);
    return 0;
}

int
cmdExpand(const std::string &path)
{
    scenario::Diagnostics diags;
    const std::vector<scenario::LoadedScenario> loaded =
        scenario::loadScenarioFile(path, diags);
    if (!diags.ok()) {
        std::cerr << diags.render();
        return 1;
    }
    for (const scenario::LoadedScenario &scenario : loaded) {
        std::cout << scenario.index << "\t" << scenario.spec.name
                  << "\tseed=" << scenario.spec.seed;
        for (const auto &[path_, value] : scenario.assignments) {
            std::cout << "\t" << path_ << "=" << value;
        }
        std::cout << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> arguments(argv + 1, argv + argc);
    if (arguments.empty()) {
        return usage();
    }
    if (arguments[0] == "--all") {
        return arguments.size() == 2 ? cmdAll(arguments[1]) : usage();
    }
    if (arguments[0] == "--canon") {
        return arguments.size() == 2 ? cmdCanon(arguments[1]) : usage();
    }
    if (arguments[0] == "--expand") {
        return arguments.size() == 2 ? cmdExpand(arguments[1]) : usage();
    }
    bool ok = true;
    for (const std::string &file : arguments) {
        if (file.rfind("--", 0) == 0) {
            return usage();
        }
        ok = lintFile(file, true) && ok;
    }
    return ok ? 0 : 1;
}
