#!/usr/bin/env bash
# Regenerate the checked-in golden-regression outputs under
# tests/golden/ from the current build. Run after an intentional
# behaviour change; commit the resulting diff so review documents the
# change. The commands here must stay in lockstep with the golden
# ctest entries in tests/CMakeLists.txt.
#
# Usage: tools/update_goldens.sh [build-dir]   (default: ./build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

cli="$build/tools/autoscale_cli"
bench="$build/bench/bench_fig_faults"
bench_serve="$build/bench/bench_fig_serve"
for binary in "$cli" "$bench" "$bench_serve"; do
    if [[ ! -x "$binary" ]]; then
        echo "missing $binary — build first (cmake --build $build)" >&2
        exit 1
    fi
done

"$cli" evaluate --device Mi8Pro --scenarios S1 --runs 10 \
    --train-runs 60 --seed 1 --jobs 1 --faults flaky-wifi --csv \
    > "$repo/tests/golden/evaluate.golden"

"$bench" --steps 600 --seed 1 \
    > "$repo/tests/golden/bench_faults.golden"

"$cli" serve --device Mi8Pro --scenario S1 --requests 200 --rate-x 2 \
    --train-runs 20 --seed 1 --faults flaky-wifi \
    > "$repo/tests/golden/serve.golden"

"$bench_serve" --seed 1 --requests 200 --blackout-requests 600 \
    > "$repo/tests/golden/bench_serve.golden"

"$cli" serve --scenario "$repo/scenarios/flash-crowd.scn" \
    > "$repo/tests/golden/scenario_serve.golden"

"$cli" serve --scenario "$repo/scenarios/churn-storm.scn" \
    > "$repo/tests/golden/churn_storm.golden"

echo "updated:"
git -C "$repo" --no-pager diff --stat -- tests/golden || true
