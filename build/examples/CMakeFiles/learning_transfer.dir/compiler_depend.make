# Empty compiler generated dependencies file for learning_transfer.
# This may be replaced when dependencies are built.
