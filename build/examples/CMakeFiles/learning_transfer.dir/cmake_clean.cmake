file(REMOVE_RECURSE
  "CMakeFiles/learning_transfer.dir/learning_transfer.cpp.o"
  "CMakeFiles/learning_transfer.dir/learning_transfer.cpp.o.d"
  "learning_transfer"
  "learning_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learning_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
