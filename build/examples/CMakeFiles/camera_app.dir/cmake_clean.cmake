file(REMOVE_RECURSE
  "CMakeFiles/camera_app.dir/camera_app.cpp.o"
  "CMakeFiles/camera_app.dir/camera_app.cpp.o.d"
  "camera_app"
  "camera_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camera_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
