# Empty dependencies file for camera_app.
# This may be replaced when dependencies are built.
