file(REMOVE_RECURSE
  "CMakeFiles/translation_app.dir/translation_app.cpp.o"
  "CMakeFiles/translation_app.dir/translation_app.cpp.o.d"
  "translation_app"
  "translation_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translation_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
