# Empty compiler generated dependencies file for translation_app.
# This may be replaced when dependencies are built.
