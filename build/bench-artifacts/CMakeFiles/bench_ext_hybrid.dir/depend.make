# Empty dependencies file for bench_ext_hybrid.
# This may be replaced when dependencies are built.
