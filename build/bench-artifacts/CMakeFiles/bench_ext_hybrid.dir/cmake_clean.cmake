file(REMOVE_RECURSE
  "../bench/bench_ext_hybrid"
  "../bench/bench_ext_hybrid.pdb"
  "CMakeFiles/bench_ext_hybrid.dir/bench_ext_hybrid.cpp.o"
  "CMakeFiles/bench_ext_hybrid.dir/bench_ext_hybrid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
