# Empty compiler generated dependencies file for bench_fig02_characterization.
# This may be replaced when dependencies are built.
