file(REMOVE_RECURSE
  "../bench/bench_tables"
  "../bench/bench_tables.pdb"
  "CMakeFiles/bench_tables.dir/bench_tables.cpp.o"
  "CMakeFiles/bench_tables.dir/bench_tables.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
