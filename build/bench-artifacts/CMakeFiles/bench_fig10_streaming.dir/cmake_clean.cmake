file(REMOVE_RECURSE
  "../bench/bench_fig10_streaming"
  "../bench/bench_fig10_streaming.pdb"
  "CMakeFiles/bench_fig10_streaming.dir/bench_fig10_streaming.cpp.o"
  "CMakeFiles/bench_fig10_streaming.dir/bench_fig10_streaming.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
