file(REMOVE_RECURSE
  "../bench/bench_fig07_predictors"
  "../bench/bench_fig07_predictors.pdb"
  "CMakeFiles/bench_fig07_predictors.dir/bench_fig07_predictors.cpp.o"
  "CMakeFiles/bench_fig07_predictors.dir/bench_fig07_predictors.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
