# Empty compiler generated dependencies file for bench_ablation_states.
# This may be replaced when dependencies are built.
