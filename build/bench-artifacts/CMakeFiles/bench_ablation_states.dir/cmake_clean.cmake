file(REMOVE_RECURSE
  "../bench/bench_ablation_states"
  "../bench/bench_ablation_states.pdb"
  "CMakeFiles/bench_ablation_states.dir/bench_ablation_states.cpp.o"
  "CMakeFiles/bench_ablation_states.dir/bench_ablation_states.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
