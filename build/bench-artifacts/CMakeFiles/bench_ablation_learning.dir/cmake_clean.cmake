file(REMOVE_RECURSE
  "../bench/bench_ablation_learning"
  "../bench/bench_ablation_learning.pdb"
  "CMakeFiles/bench_ablation_learning.dir/bench_ablation_learning.cpp.o"
  "CMakeFiles/bench_ablation_learning.dir/bench_ablation_learning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
