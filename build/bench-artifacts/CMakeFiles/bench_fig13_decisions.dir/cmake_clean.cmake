file(REMOVE_RECURSE
  "../bench/bench_fig13_decisions"
  "../bench/bench_fig13_decisions.pdb"
  "CMakeFiles/bench_fig13_decisions.dir/bench_fig13_decisions.cpp.o"
  "CMakeFiles/bench_fig13_decisions.dir/bench_fig13_decisions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_decisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
