file(REMOVE_RECURSE
  "../bench/bench_fig06_signal_strength"
  "../bench/bench_fig06_signal_strength.pdb"
  "CMakeFiles/bench_fig06_signal_strength.dir/bench_fig06_signal_strength.cpp.o"
  "CMakeFiles/bench_fig06_signal_strength.dir/bench_fig06_signal_strength.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_signal_strength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
