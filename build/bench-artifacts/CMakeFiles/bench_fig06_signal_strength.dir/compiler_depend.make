# Empty compiler generated dependencies file for bench_fig06_signal_strength.
# This may be replaced when dependencies are built.
