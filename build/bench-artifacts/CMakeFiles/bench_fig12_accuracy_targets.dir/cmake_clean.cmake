file(REMOVE_RECURSE
  "../bench/bench_fig12_accuracy_targets"
  "../bench/bench_fig12_accuracy_targets.pdb"
  "CMakeFiles/bench_fig12_accuracy_targets.dir/bench_fig12_accuracy_targets.cpp.o"
  "CMakeFiles/bench_fig12_accuracy_targets.dir/bench_fig12_accuracy_targets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_accuracy_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
