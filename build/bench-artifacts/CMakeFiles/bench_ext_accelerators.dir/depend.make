# Empty dependencies file for bench_ext_accelerators.
# This may be replaced when dependencies are built.
