file(REMOVE_RECURSE
  "../bench/bench_ext_accelerators"
  "../bench/bench_ext_accelerators.pdb"
  "CMakeFiles/bench_ext_accelerators.dir/bench_ext_accelerators.cpp.o"
  "CMakeFiles/bench_ext_accelerators.dir/bench_ext_accelerators.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_accelerators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
