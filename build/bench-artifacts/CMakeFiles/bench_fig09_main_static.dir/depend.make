# Empty dependencies file for bench_fig09_main_static.
# This may be replaced when dependencies are built.
