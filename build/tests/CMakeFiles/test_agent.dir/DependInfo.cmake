
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_agent.cpp" "tests/CMakeFiles/test_agent.dir/test_agent.cpp.o" "gcc" "tests/CMakeFiles/test_agent.dir/test_agent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/autoscale_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/autoscale_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/autoscale_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/autoscale_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/autoscale_env.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/autoscale_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/autoscale_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/autoscale_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autoscale_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
