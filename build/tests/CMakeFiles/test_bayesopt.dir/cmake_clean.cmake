file(REMOVE_RECURSE
  "CMakeFiles/test_bayesopt.dir/test_bayesopt.cpp.o"
  "CMakeFiles/test_bayesopt.dir/test_bayesopt.cpp.o.d"
  "test_bayesopt"
  "test_bayesopt.pdb"
  "test_bayesopt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bayesopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
