# Empty compiler generated dependencies file for test_failure_handling.
# This may be replaced when dependencies are built.
