file(REMOVE_RECURSE
  "CMakeFiles/test_failure_handling.dir/test_failure_handling.cpp.o"
  "CMakeFiles/test_failure_handling.dir/test_failure_handling.cpp.o.d"
  "test_failure_handling"
  "test_failure_handling.pdb"
  "test_failure_handling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_handling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
