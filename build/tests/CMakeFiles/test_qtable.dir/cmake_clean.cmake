file(REMOVE_RECURSE
  "CMakeFiles/test_qtable.dir/test_qtable.cpp.o"
  "CMakeFiles/test_qtable.dir/test_qtable.cpp.o.d"
  "test_qtable"
  "test_qtable.pdb"
  "test_qtable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
