# Empty compiler generated dependencies file for test_qtable.
# This may be replaced when dependencies are built.
