# Empty dependencies file for test_dbscan.
# This may be replaced when dependencies are built.
