# Empty dependencies file for test_fixed_policies.
# This may be replaced when dependencies are built.
