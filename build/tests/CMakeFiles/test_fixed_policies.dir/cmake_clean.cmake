file(REMOVE_RECURSE
  "CMakeFiles/test_fixed_policies.dir/test_fixed_policies.cpp.o"
  "CMakeFiles/test_fixed_policies.dir/test_fixed_policies.cpp.o.d"
  "test_fixed_policies"
  "test_fixed_policies.pdb"
  "test_fixed_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixed_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
