# Empty dependencies file for test_action_space.
# This may be replaced when dependencies are built.
