file(REMOVE_RECURSE
  "CMakeFiles/test_action_space.dir/test_action_space.cpp.o"
  "CMakeFiles/test_action_space.dir/test_action_space.cpp.o.d"
  "test_action_space"
  "test_action_space.pdb"
  "test_action_space[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_action_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
