# Empty compiler generated dependencies file for autoscale_net.
# This may be replaced when dependencies are built.
