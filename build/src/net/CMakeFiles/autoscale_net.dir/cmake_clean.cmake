file(REMOVE_RECURSE
  "CMakeFiles/autoscale_net.dir/link.cc.o"
  "CMakeFiles/autoscale_net.dir/link.cc.o.d"
  "CMakeFiles/autoscale_net.dir/rssi_process.cc.o"
  "CMakeFiles/autoscale_net.dir/rssi_process.cc.o.d"
  "libautoscale_net.a"
  "libautoscale_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscale_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
