file(REMOVE_RECURSE
  "libautoscale_net.a"
)
