# Empty compiler generated dependencies file for autoscale_harness.
# This may be replaced when dependencies are built.
