file(REMOVE_RECURSE
  "CMakeFiles/autoscale_harness.dir/autoscale_policy.cc.o"
  "CMakeFiles/autoscale_harness.dir/autoscale_policy.cc.o.d"
  "CMakeFiles/autoscale_harness.dir/experiment.cc.o"
  "CMakeFiles/autoscale_harness.dir/experiment.cc.o.d"
  "CMakeFiles/autoscale_harness.dir/hybrid_policy.cc.o"
  "CMakeFiles/autoscale_harness.dir/hybrid_policy.cc.o.d"
  "CMakeFiles/autoscale_harness.dir/metrics.cc.o"
  "CMakeFiles/autoscale_harness.dir/metrics.cc.o.d"
  "libautoscale_harness.a"
  "libautoscale_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscale_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
