file(REMOVE_RECURSE
  "libautoscale_harness.a"
)
