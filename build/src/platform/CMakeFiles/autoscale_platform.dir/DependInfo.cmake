
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/device.cc" "src/platform/CMakeFiles/autoscale_platform.dir/device.cc.o" "gcc" "src/platform/CMakeFiles/autoscale_platform.dir/device.cc.o.d"
  "/root/repo/src/platform/device_zoo.cc" "src/platform/CMakeFiles/autoscale_platform.dir/device_zoo.cc.o" "gcc" "src/platform/CMakeFiles/autoscale_platform.dir/device_zoo.cc.o.d"
  "/root/repo/src/platform/power.cc" "src/platform/CMakeFiles/autoscale_platform.dir/power.cc.o" "gcc" "src/platform/CMakeFiles/autoscale_platform.dir/power.cc.o.d"
  "/root/repo/src/platform/processor.cc" "src/platform/CMakeFiles/autoscale_platform.dir/processor.cc.o" "gcc" "src/platform/CMakeFiles/autoscale_platform.dir/processor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnn/CMakeFiles/autoscale_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autoscale_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
