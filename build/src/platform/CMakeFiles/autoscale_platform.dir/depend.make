# Empty dependencies file for autoscale_platform.
# This may be replaced when dependencies are built.
