file(REMOVE_RECURSE
  "CMakeFiles/autoscale_platform.dir/device.cc.o"
  "CMakeFiles/autoscale_platform.dir/device.cc.o.d"
  "CMakeFiles/autoscale_platform.dir/device_zoo.cc.o"
  "CMakeFiles/autoscale_platform.dir/device_zoo.cc.o.d"
  "CMakeFiles/autoscale_platform.dir/power.cc.o"
  "CMakeFiles/autoscale_platform.dir/power.cc.o.d"
  "CMakeFiles/autoscale_platform.dir/processor.cc.o"
  "CMakeFiles/autoscale_platform.dir/processor.cc.o.d"
  "libautoscale_platform.a"
  "libautoscale_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscale_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
