file(REMOVE_RECURSE
  "libautoscale_platform.a"
)
