# Empty dependencies file for autoscale_core.
# This may be replaced when dependencies are built.
