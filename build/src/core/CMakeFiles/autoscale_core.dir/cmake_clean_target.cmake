file(REMOVE_RECURSE
  "libautoscale_core.a"
)
