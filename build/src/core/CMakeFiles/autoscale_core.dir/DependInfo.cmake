
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/action_space.cc" "src/core/CMakeFiles/autoscale_core.dir/action_space.cc.o" "gcc" "src/core/CMakeFiles/autoscale_core.dir/action_space.cc.o.d"
  "/root/repo/src/core/agent.cc" "src/core/CMakeFiles/autoscale_core.dir/agent.cc.o" "gcc" "src/core/CMakeFiles/autoscale_core.dir/agent.cc.o.d"
  "/root/repo/src/core/dbscan.cc" "src/core/CMakeFiles/autoscale_core.dir/dbscan.cc.o" "gcc" "src/core/CMakeFiles/autoscale_core.dir/dbscan.cc.o.d"
  "/root/repo/src/core/hybrid.cc" "src/core/CMakeFiles/autoscale_core.dir/hybrid.cc.o" "gcc" "src/core/CMakeFiles/autoscale_core.dir/hybrid.cc.o.d"
  "/root/repo/src/core/qtable.cc" "src/core/CMakeFiles/autoscale_core.dir/qtable.cc.o" "gcc" "src/core/CMakeFiles/autoscale_core.dir/qtable.cc.o.d"
  "/root/repo/src/core/reward.cc" "src/core/CMakeFiles/autoscale_core.dir/reward.cc.o" "gcc" "src/core/CMakeFiles/autoscale_core.dir/reward.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/autoscale_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/autoscale_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/state.cc" "src/core/CMakeFiles/autoscale_core.dir/state.cc.o" "gcc" "src/core/CMakeFiles/autoscale_core.dir/state.cc.o.d"
  "/root/repo/src/core/transfer.cc" "src/core/CMakeFiles/autoscale_core.dir/transfer.cc.o" "gcc" "src/core/CMakeFiles/autoscale_core.dir/transfer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/autoscale_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/autoscale_env.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/autoscale_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autoscale_util.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/autoscale_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/autoscale_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
