file(REMOVE_RECURSE
  "CMakeFiles/autoscale_core.dir/action_space.cc.o"
  "CMakeFiles/autoscale_core.dir/action_space.cc.o.d"
  "CMakeFiles/autoscale_core.dir/agent.cc.o"
  "CMakeFiles/autoscale_core.dir/agent.cc.o.d"
  "CMakeFiles/autoscale_core.dir/dbscan.cc.o"
  "CMakeFiles/autoscale_core.dir/dbscan.cc.o.d"
  "CMakeFiles/autoscale_core.dir/hybrid.cc.o"
  "CMakeFiles/autoscale_core.dir/hybrid.cc.o.d"
  "CMakeFiles/autoscale_core.dir/qtable.cc.o"
  "CMakeFiles/autoscale_core.dir/qtable.cc.o.d"
  "CMakeFiles/autoscale_core.dir/reward.cc.o"
  "CMakeFiles/autoscale_core.dir/reward.cc.o.d"
  "CMakeFiles/autoscale_core.dir/scheduler.cc.o"
  "CMakeFiles/autoscale_core.dir/scheduler.cc.o.d"
  "CMakeFiles/autoscale_core.dir/state.cc.o"
  "CMakeFiles/autoscale_core.dir/state.cc.o.d"
  "CMakeFiles/autoscale_core.dir/transfer.cc.o"
  "CMakeFiles/autoscale_core.dir/transfer.cc.o.d"
  "libautoscale_core.a"
  "libautoscale_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscale_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
