file(REMOVE_RECURSE
  "libautoscale_env.a"
)
