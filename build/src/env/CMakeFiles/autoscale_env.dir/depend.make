# Empty dependencies file for autoscale_env.
# This may be replaced when dependencies are built.
