file(REMOVE_RECURSE
  "CMakeFiles/autoscale_env.dir/interference.cc.o"
  "CMakeFiles/autoscale_env.dir/interference.cc.o.d"
  "CMakeFiles/autoscale_env.dir/scenario.cc.o"
  "CMakeFiles/autoscale_env.dir/scenario.cc.o.d"
  "CMakeFiles/autoscale_env.dir/thermal.cc.o"
  "CMakeFiles/autoscale_env.dir/thermal.cc.o.d"
  "libautoscale_env.a"
  "libautoscale_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscale_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
