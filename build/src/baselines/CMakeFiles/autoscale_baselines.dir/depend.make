# Empty dependencies file for autoscale_baselines.
# This may be replaced when dependencies are built.
