
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bayesopt.cc" "src/baselines/CMakeFiles/autoscale_baselines.dir/bayesopt.cc.o" "gcc" "src/baselines/CMakeFiles/autoscale_baselines.dir/bayesopt.cc.o.d"
  "/root/repo/src/baselines/classify.cc" "src/baselines/CMakeFiles/autoscale_baselines.dir/classify.cc.o" "gcc" "src/baselines/CMakeFiles/autoscale_baselines.dir/classify.cc.o.d"
  "/root/repo/src/baselines/features.cc" "src/baselines/CMakeFiles/autoscale_baselines.dir/features.cc.o" "gcc" "src/baselines/CMakeFiles/autoscale_baselines.dir/features.cc.o.d"
  "/root/repo/src/baselines/fixed.cc" "src/baselines/CMakeFiles/autoscale_baselines.dir/fixed.cc.o" "gcc" "src/baselines/CMakeFiles/autoscale_baselines.dir/fixed.cc.o.d"
  "/root/repo/src/baselines/oracle.cc" "src/baselines/CMakeFiles/autoscale_baselines.dir/oracle.cc.o" "gcc" "src/baselines/CMakeFiles/autoscale_baselines.dir/oracle.cc.o.d"
  "/root/repo/src/baselines/partitioners.cc" "src/baselines/CMakeFiles/autoscale_baselines.dir/partitioners.cc.o" "gcc" "src/baselines/CMakeFiles/autoscale_baselines.dir/partitioners.cc.o.d"
  "/root/repo/src/baselines/policy.cc" "src/baselines/CMakeFiles/autoscale_baselines.dir/policy.cc.o" "gcc" "src/baselines/CMakeFiles/autoscale_baselines.dir/policy.cc.o.d"
  "/root/repo/src/baselines/regression.cc" "src/baselines/CMakeFiles/autoscale_baselines.dir/regression.cc.o" "gcc" "src/baselines/CMakeFiles/autoscale_baselines.dir/regression.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/autoscale_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/autoscale_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autoscale_util.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/autoscale_env.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/autoscale_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/autoscale_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/autoscale_dnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
