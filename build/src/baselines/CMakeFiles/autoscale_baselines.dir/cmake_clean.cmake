file(REMOVE_RECURSE
  "CMakeFiles/autoscale_baselines.dir/bayesopt.cc.o"
  "CMakeFiles/autoscale_baselines.dir/bayesopt.cc.o.d"
  "CMakeFiles/autoscale_baselines.dir/classify.cc.o"
  "CMakeFiles/autoscale_baselines.dir/classify.cc.o.d"
  "CMakeFiles/autoscale_baselines.dir/features.cc.o"
  "CMakeFiles/autoscale_baselines.dir/features.cc.o.d"
  "CMakeFiles/autoscale_baselines.dir/fixed.cc.o"
  "CMakeFiles/autoscale_baselines.dir/fixed.cc.o.d"
  "CMakeFiles/autoscale_baselines.dir/oracle.cc.o"
  "CMakeFiles/autoscale_baselines.dir/oracle.cc.o.d"
  "CMakeFiles/autoscale_baselines.dir/partitioners.cc.o"
  "CMakeFiles/autoscale_baselines.dir/partitioners.cc.o.d"
  "CMakeFiles/autoscale_baselines.dir/policy.cc.o"
  "CMakeFiles/autoscale_baselines.dir/policy.cc.o.d"
  "CMakeFiles/autoscale_baselines.dir/regression.cc.o"
  "CMakeFiles/autoscale_baselines.dir/regression.cc.o.d"
  "libautoscale_baselines.a"
  "libautoscale_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscale_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
