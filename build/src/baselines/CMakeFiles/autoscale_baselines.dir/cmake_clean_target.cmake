file(REMOVE_RECURSE
  "libautoscale_baselines.a"
)
