file(REMOVE_RECURSE
  "CMakeFiles/autoscale_util.dir/linalg.cc.o"
  "CMakeFiles/autoscale_util.dir/linalg.cc.o.d"
  "CMakeFiles/autoscale_util.dir/stats.cc.o"
  "CMakeFiles/autoscale_util.dir/stats.cc.o.d"
  "CMakeFiles/autoscale_util.dir/table.cc.o"
  "CMakeFiles/autoscale_util.dir/table.cc.o.d"
  "libautoscale_util.a"
  "libautoscale_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscale_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
