# Empty dependencies file for autoscale_util.
# This may be replaced when dependencies are built.
