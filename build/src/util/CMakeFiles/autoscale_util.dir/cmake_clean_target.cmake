file(REMOVE_RECURSE
  "libautoscale_util.a"
)
