file(REMOVE_RECURSE
  "CMakeFiles/autoscale_sim.dir/qos.cc.o"
  "CMakeFiles/autoscale_sim.dir/qos.cc.o.d"
  "CMakeFiles/autoscale_sim.dir/simulator.cc.o"
  "CMakeFiles/autoscale_sim.dir/simulator.cc.o.d"
  "CMakeFiles/autoscale_sim.dir/target.cc.o"
  "CMakeFiles/autoscale_sim.dir/target.cc.o.d"
  "libautoscale_sim.a"
  "libautoscale_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscale_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
