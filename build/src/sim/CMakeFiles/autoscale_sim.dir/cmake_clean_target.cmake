file(REMOVE_RECURSE
  "libautoscale_sim.a"
)
