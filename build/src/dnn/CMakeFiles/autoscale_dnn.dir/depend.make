# Empty dependencies file for autoscale_dnn.
# This may be replaced when dependencies are built.
