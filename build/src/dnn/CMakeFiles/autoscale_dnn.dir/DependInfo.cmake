
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/accuracy.cc" "src/dnn/CMakeFiles/autoscale_dnn.dir/accuracy.cc.o" "gcc" "src/dnn/CMakeFiles/autoscale_dnn.dir/accuracy.cc.o.d"
  "/root/repo/src/dnn/model_zoo.cc" "src/dnn/CMakeFiles/autoscale_dnn.dir/model_zoo.cc.o" "gcc" "src/dnn/CMakeFiles/autoscale_dnn.dir/model_zoo.cc.o.d"
  "/root/repo/src/dnn/network.cc" "src/dnn/CMakeFiles/autoscale_dnn.dir/network.cc.o" "gcc" "src/dnn/CMakeFiles/autoscale_dnn.dir/network.cc.o.d"
  "/root/repo/src/dnn/synthetic.cc" "src/dnn/CMakeFiles/autoscale_dnn.dir/synthetic.cc.o" "gcc" "src/dnn/CMakeFiles/autoscale_dnn.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/autoscale_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
