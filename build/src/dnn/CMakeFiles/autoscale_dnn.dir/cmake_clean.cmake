file(REMOVE_RECURSE
  "CMakeFiles/autoscale_dnn.dir/accuracy.cc.o"
  "CMakeFiles/autoscale_dnn.dir/accuracy.cc.o.d"
  "CMakeFiles/autoscale_dnn.dir/model_zoo.cc.o"
  "CMakeFiles/autoscale_dnn.dir/model_zoo.cc.o.d"
  "CMakeFiles/autoscale_dnn.dir/network.cc.o"
  "CMakeFiles/autoscale_dnn.dir/network.cc.o.d"
  "CMakeFiles/autoscale_dnn.dir/synthetic.cc.o"
  "CMakeFiles/autoscale_dnn.dir/synthetic.cc.o.d"
  "libautoscale_dnn.a"
  "libautoscale_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscale_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
