file(REMOVE_RECURSE
  "libautoscale_dnn.a"
)
