# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_usage "/root/repo/build/tools/autoscale_cli")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_devices "/root/repo/build/tools/autoscale_cli" "devices")
set_tests_properties(cli_devices PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_workloads "/root/repo/build/tools/autoscale_cli" "workloads")
set_tests_properties(cli_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_characterize "/root/repo/build/tools/autoscale_cli" "characterize" "--device" "Galaxy S10e")
set_tests_properties(cli_characterize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_decide "/root/repo/build/tools/autoscale_cli" "decide" "--device" "Mi8Pro" "--network" "ResNet 50" "--rssi-wlan" "-85" "--top" "3")
set_tests_properties(cli_decide PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_train_evaluate_roundtrip "sh" "-c" "/root/repo/build/tools/autoscale_cli train --device Mi8Pro               --scenarios S1 --runs 60 --out cli_test_qtable.txt &&           /root/repo/build/tools/autoscale_cli evaluate --device Mi8Pro               --qtable cli_test_qtable.txt --scenarios S1 --runs 3 --csv")
set_tests_properties(cli_train_evaluate_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
