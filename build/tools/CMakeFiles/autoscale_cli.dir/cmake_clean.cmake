file(REMOVE_RECURSE
  "CMakeFiles/autoscale_cli.dir/autoscale_cli.cpp.o"
  "CMakeFiles/autoscale_cli.dir/autoscale_cli.cpp.o.d"
  "autoscale_cli"
  "autoscale_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscale_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
