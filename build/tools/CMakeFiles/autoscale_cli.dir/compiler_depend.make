# Empty compiler generated dependencies file for autoscale_cli.
# This may be replaced when dependencies are built.
