/**
 * @file
 * Fig. 14: training convergence and learning transfer, plus the
 * Section V-C hyperparameter sensitivity sweep.
 *
 * Paper anchors: the reward converges in about 40-50 runs from scratch;
 * transferring a Q-table trained on the Mi8Pro to the other phones cuts
 * training time by ~21.2%; dynamic environments converge ~9.1% slower
 * from scratch, shrinking to ~0.5% with transfer; and the sensitivity
 * sweep prefers a high learning rate (0.9) with a low discount (0.1).
 */

#include <iostream>

#include "common.h"
#include "core/scheduler.h"
#include "dnn/model_zoo.h"
#include "util/stats.h"

using namespace autoscale;

namespace {

/**
 * Train @p scheduler on one (network, scenario) stream and return the
 * run index at which the reward converged (or @p maxRuns). When @p obs
 * is tracing, one "train"-phase DecisionEvent is recorded per run (the
 * reward series the figure plots); callers inside parallel regions
 * pass a disabled context.
 */
int
convergenceRuns(core::AutoScaleScheduler &scheduler,
                const sim::InferenceSimulator &sim,
                const dnn::Network &net, env::ScenarioId scenario_id,
                int maxRuns, Rng &rng, std::vector<double> *rewards,
                const obs::ObsContext &obs = {})
{
    core::ConvergenceTracker tracker(10, 0.08);
    env::Scenario scenario(scenario_id);
    const sim::InferenceRequest request = sim::makeRequest(net);
    int converged_at = maxRuns;
    for (int run = 0; run < maxRuns; ++run) {
        const env::EnvState env = scenario.next(rng);
        const sim::ExecutionTarget &target =
            scheduler.choose(request, env);
        const sim::Outcome outcome = sim.run(net, target, env, rng);
        scheduler.feedback(outcome);
        tracker.add(scheduler.lastReward());
        if (rewards != nullptr) {
            rewards->push_back(scheduler.lastReward());
        }
        if (obs.tracing()) {
            obs::DecisionEvent event;
            event.policy = "AutoScale";
            event.network = net.name();
            event.scenario = env::scenarioName(scenario_id);
            event.phase = "train";
            event.coCpuUtil = env.coCpuUtil;
            event.coMemUtil = env.coMemUtil;
            event.rssiWlanDbm = env.rssiWlanDbm;
            event.rssiP2pDbm = env.rssiP2pDbm;
            event.thermalFactor = env.thermalFactor;
            event.target = target.label();
            event.category = target.category();
            event.feasible = outcome.feasible;
            event.latencyMs = outcome.latencyMs;
            event.energyJ = outcome.energyJ;
            event.accuracyPct = outcome.accuracyPct;
            event.qosMs = request.qosMs;
            event.qosViolated = !outcome.feasible
                || outcome.latencyMs >= request.qosMs;
            const core::AutoScaleScheduler::DecisionInfo &info =
                scheduler.lastDecision();
            event.stateId = info.state;
            event.actionId = info.action;
            event.qValue = info.qValue;
            event.explored = info.explored;
            event.reward = scheduler.lastReward();
            event.qUpdateDelta = scheduler.lastQUpdateDelta();
            obs.trace->record(std::move(event));
        }
        if (converged_at == maxRuns && tracker.converged()) {
            converged_at = run + 1;
        }
    }
    scheduler.finishEpisode();
    return converged_at;
}

/**
 * Mean convergence run count across the zoo. Each network's training
 * stream is independent (own scheduler, own per-index RNG), so the zoo
 * fans out across @p jobs workers; the result is identical for any
 * worker count.
 */
double
meanConvergence(const sim::InferenceSimulator &sim,
                env::ScenarioId scenario_id, std::uint64_t seed,
                const core::AutoScaleScheduler *transfer_source, int jobs)
{
    const std::vector<const dnn::Network *> zoo =
        harness::allZooNetworks();
    const std::vector<double> runs = harness::parallelIndexed(
        zoo.size(), jobs, [&](std::size_t i) {
            core::AutoScaleScheduler scheduler(
                sim, core::SchedulerConfig{}, seed ^ 0xabcULL);
            if (transfer_source != nullptr) {
                scheduler.transferFrom(*transfer_source);
            }
            Rng rng(harness::replicateSeed(seed, i));
            return static_cast<double>(convergenceRuns(
                scheduler, sim, *zoo[i], scenario_id, 200, rng,
                nullptr));
        });
    return mean(runs);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printHeader(
        "Fig. 14: training convergence and learning transfer",
        "Shape: ~tens of runs from scratch; transfer accelerates "
        "convergence, especially in dynamic environments");

    const Args args(argc, argv);
    const bench::RunConfig rc = bench::runConfigFromArgs(args);
    obs::ObsOutput obs_out(rc.obs);

    sim::InferenceSimulator mi8 =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    if (obs_out.config().metering()) {
        mi8.setObserver(&obs_out.metrics());
    }

    // Reward trace for one representative workload (plot series). This
    // block is serial, so it records straight into the run-level trace.
    printBanner(std::cout,
                "Reward trace: Inception v1 on Mi8Pro, from scratch");
    {
        core::AutoScaleScheduler scheduler(mi8, core::SchedulerConfig{},
                                           77);
        Rng rng(78);
        std::vector<double> rewards;
        const int converged = convergenceRuns(
            scheduler, mi8, dnn::findModel("Inception v1"),
            env::ScenarioId::S1, 120, rng, &rewards,
            obs_out.context());
        Table trace({"Run", "Reward (window mean of 10)"});
        for (std::size_t i = 9; i < rewards.size(); i += 10) {
            double window = 0.0;
            for (std::size_t j = i + 1 - 10; j <= i; ++j) {
                window += rewards[j];
            }
            trace.addRow({std::to_string(i + 1),
                          Table::num(window / 10.0, 2)});
        }
        trace.print(std::cout);
        std::cout << "Converged after "
                  << bench::withPaper(std::to_string(converged) + " runs",
                                      "40-50 runs")
                  << '\n';
    }

    // A fully trained Mi8Pro scheduler as the transfer source.
    printBanner(std::cout, "Learning transfer across devices");
    auto source = bench::trainOnAll(mi8, env::staticScenarios(), 1401);

    Table transfer({"Device", "Env", "From scratch (runs)",
                    "With transfer (runs)", "Reduction"});
    std::vector<double> reductions;
    for (const std::string &phone : {std::string("Galaxy S10e"),
                                     std::string("Moto X Force")}) {
        const sim::InferenceSimulator sim =
            sim::InferenceSimulator::makeDefault(platform::makePhone(phone));
        // Re-key the source table onto this device's action space once.
        core::AutoScaleScheduler seeded(sim, core::SchedulerConfig{},
                                        1402);
        seeded.transferFrom(source->scheduler());

        for (const env::ScenarioId id :
             {env::ScenarioId::S1, env::ScenarioId::D3}) {
            const double scratch =
                meanConvergence(sim, id, 1403, nullptr, rc.jobs);
            const double transferred =
                meanConvergence(sim, id, 1403, &seeded, rc.jobs);
            const double reduction = 1.0 - transferred / scratch;
            reductions.push_back(reduction);
            transfer.addRow({phone, env::scenarioName(id),
                             Table::num(scratch, 1),
                             Table::num(transferred, 1),
                             Table::pct(reduction)});
        }
    }
    transfer.print(std::cout);
    std::cout << "Average training-time reduction from transfer: "
              << bench::withPaper(Table::pct(mean(reductions)), "21.2%")
              << '\n';

    // Static vs dynamic convergence gap.
    printBanner(std::cout, "Dynamic vs static convergence (from scratch)");
    const double static_runs =
        meanConvergence(mi8, env::ScenarioId::S1, 1404, nullptr, rc.jobs);
    const double dynamic_runs =
        meanConvergence(mi8, env::ScenarioId::D2, 1404, nullptr, rc.jobs);
    std::cout << "Static S1: " << Table::num(static_runs, 1)
              << " runs; dynamic D2: " << Table::num(dynamic_runs, 1)
              << " runs; slowdown "
              << bench::withPaper(
                     Table::pct(dynamic_runs / static_runs - 1.0), "9.1%")
              << '\n';

    // Section V-C hyperparameter sensitivity.
    printBanner(std::cout,
                "Hyperparameter sensitivity (final greedy reward)");
    Table hyper({"Learning rate", "Discount", "Mean converge runs",
                 "Final window reward"});
    // Each grid point owns its scheduler and RNG, so the 3x3 sweep
    // fans out across workers; rows are emitted in grid order.
    const std::vector<double> grid = {0.1, 0.5, 0.9};
    struct SweepResult {
        int converged = 0;
        double tailReward = 0.0;
    };
    const std::vector<SweepResult> sweep = harness::parallelIndexed(
        grid.size() * grid.size(), rc.jobs, [&](std::size_t cell) {
            core::SchedulerConfig config;
            config.rl.learningRate = grid[cell / grid.size()];
            config.rl.discount = grid[cell % grid.size()];
            core::AutoScaleScheduler scheduler(mi8, config, 1405);
            Rng rng(1406);
            std::vector<double> rewards;
            SweepResult result;
            result.converged = convergenceRuns(
                scheduler, mi8, dnn::findModel("MobileNet v2"),
                env::ScenarioId::S1, 200, rng, &rewards);
            for (std::size_t i = rewards.size() - 10;
                 i < rewards.size(); ++i) {
                result.tailReward += rewards[i];
            }
            return result;
        });
    for (std::size_t cell = 0; cell < sweep.size(); ++cell) {
        hyper.addRow({Table::num(grid[cell / grid.size()], 1),
                      Table::num(grid[cell % grid.size()], 1),
                      std::to_string(sweep[cell].converged),
                      Table::num(sweep[cell].tailReward / 10.0, 2)});
    }
    hyper.print(std::cout);
    std::cout << "Paper choice: learning rate 0.9, discount 0.1.\n";
    obs_out.finalize(&std::cout);
    return 0;
}
