/**
 * @file
 * Fig. 3: cumulative per-layer-type latency of Inception v1 and
 * MobileNet v3 on the Mi8Pro's CPU, GPU, and DSP, normalized to the
 * CPU.
 *
 * Paper shape to reproduce: FC layers exhibit much longer latency on
 * the co-processors, whereas CONV (and other) layers exhibit longer
 * latency on the CPU — so FC-heavy networks (MobileNet v3) favor CPUs
 * and CONV-heavy ones (Inception v1) favor co-processors.
 */

#include <iostream>

#include "common.h"
#include "dnn/model_zoo.h"

using namespace autoscale;

namespace {

double
cumulativeLatency(const platform::Processor &proc, const dnn::Network &net,
                  dnn::Precision precision, bool major_kind,
                  dnn::LayerKind kind)
{
    double total = 0.0;
    for (const auto &layer : net.layers()) {
        const bool is_kind = major_kind
            ? layer.kind == kind
            : !layer.isMajorKind();
        if (is_kind) {
            total += proc.layerLatencyMs(layer, precision,
                                         proc.maxVfIndex());
        }
    }
    return total;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Fig. 3: per-layer-type latency across mobile processors",
        "Shape: CONV cheaper on GPU/DSP than CPU; FC cheaper on CPU");

    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    const platform::Device &device = sim.localDevice();

    for (const char *name : {"Inception v1", "MobileNet v3"}) {
        const dnn::Network &net = dnn::findModel(name);
        printBanner(std::cout, std::string(name) + " on Mi8Pro");
        Table table({"Layer type", "CPU (ms)", "GPU (norm to CPU)",
                     "DSP (norm to CPU)"});

        struct Row {
            const char *label;
            bool major;
            dnn::LayerKind kind;
        };
        const Row rows[] = {
            {"CONV", true, dnn::LayerKind::Conv},
            {"FC", true, dnn::LayerKind::FullyConnected},
            {"Other", false, dnn::LayerKind::Pool},
        };
        for (const Row &row : rows) {
            const double cpu = cumulativeLatency(
                device.cpu(), net, dnn::Precision::FP32, row.major,
                row.kind);
            if (cpu <= 0.0) {
                continue;
            }
            const double gpu = cumulativeLatency(
                device.gpu(), net, dnn::Precision::FP32, row.major,
                row.kind);
            const double dsp = cumulativeLatency(
                device.dsp(), net, dnn::Precision::INT8, row.major,
                row.kind);
            table.addRow({row.label, Table::num(cpu, 2),
                          Table::num(gpu / cpu, 2),
                          Table::num(dsp / cpu, 2)});
        }
        table.print(std::cout);
    }

    std::cout << "\nReading: normalized values < 1 mean the co-processor"
                 " is faster than\nthe CPU for that layer type; FC rows"
                 " must exceed 1 (host-sync overhead).\n";
    return 0;
}
