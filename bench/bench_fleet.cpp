/**
 * @file
 * Fleet-serving benchmark (DESIGN.md §15): device-steps/sec (arrivals
 * processed across the whole fleet per wall second), energy, and QoS
 * as fleet size grows, at 1x and 4x contention. The --check gate runs
 * a 1000-device fleet through the 2x-contention scenario and fails
 * unless (a) the fleet completes with a positive device-steps/sec
 * figure and (b) the fleet checksum is bit-equal between --shards 1
 * and --shards 4 — the cross-shard determinism contract, enforced in
 * the perf-gate CI job. Results land in BENCH_fleet.json.
 *
 * Memory gate (DESIGN.md §18): before the throughput sweep — peak RSS
 * (VmHWM) is monotone, so the million-device fleet must run while the
 * process is still small — a --memory-devices fleet (default 1000000)
 * of fixed-policy devices runs one contention epoch sweep with
 * aggregate stats, and --check fails unless it completes under
 * --memory-budget bytes/device (default 4096; measured ~2.2 KB).
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "dnn/model_zoo.h"
#include "obs/json.h"
#include "serve/fleet.h"
#include "serve/server.h"
#include "util/logging.h"

using namespace autoscale;

namespace {

/** One fleet run's measurement. */
struct Measurement {
    int devices = 0;
    double contention = 1.0;
    std::int64_t arrivals = 0;
    std::int64_t served = 0;
    std::int64_t qosViolations = 0;
    double energyJ = 0.0;
    double seconds = 0.0;
    std::uint64_t checksum = 0;

    double
    deviceStepsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(arrivals) / seconds
                             : 0.0;
    }
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

serve::FleetConfig
fleetConfig(int devices, double contention, std::int64_t requests,
            std::uint64_t seed, int shards)
{
    serve::FleetConfig fleet;
    // No fault plan: injected WLAN faults would trip the breakers and
    // push everything onto the local fallback, hiding the shared-infra
    // contention this benchmark is about.
    fleet.serve.scenario = env::ScenarioId::D3;
    fleet.serve.totalRequests = requests;
    fleet.serve.seed = seed;
    // Throughput of the fleet loop itself: skip pre-training (device 0
    // would train once and warm-start the rest, but even that single
    // run would dominate small-fleet timings). A remote-only policy
    // keeps every request on the shared edge so contention actually
    // shapes the sweep.
    fleet.serve.trainRunsPerCombo = 0;
    fleet.serve.policyName = "connected-edge";
    fleet.devices = devices;
    fleet.shards = shards;
    // Short epochs: at 2x overload the whole arrival burst spans only a
    // few hundred virtual milliseconds, and contention feeds back one
    // epoch behind — 50 ms barriers give it several epochs to bite.
    fleet.epochMs = 50.0;
    fleet.infra.contention = contention;
    fleet.infra.brownoutPeriodMs = 200.0;
    fleet.infra.brownoutDurationMs = 50.0;

    sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    std::vector<const dnn::Network *> networks;
    for (const dnn::Network &network : dnn::modelZoo()) {
        networks.push_back(&network);
    }
    fleet.serve.arrival.ratePerSec = 2.0 * 1000.0
        / serve::nominalServiceMs(sim, networks,
                                  fleet.serve.accuracyTargetPct);
    return fleet;
}

Measurement
runFleetBench(int devices, double contention, std::int64_t requests,
              std::uint64_t seed, int shards)
{
    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    const serve::FleetConfig fleet =
        fleetConfig(devices, contention, requests, seed, shards);

    Measurement m;
    m.devices = devices;
    m.contention = contention;
    const double start = now();
    const serve::FleetStats stats = serve::runFleet(sim, fleet, {});
    m.seconds = now() - start;
    m.arrivals = stats.totalArrivals();
    m.served = stats.totalServed();
    m.qosViolations = stats.totalQosViolations();
    m.energyJ = stats.totalEnergyJ();
    m.checksum = stats.checksum;
    return m;
}

void
printMeasurement(const Measurement &m)
{
    std::cout << m.devices << " devices @" << Table::num(m.contention, 0)
              << "x: " << Table::num(m.deviceStepsPerSec(), 0)
              << " device-steps/s (" << m.arrivals << " arrivals in "
              << Table::num(m.seconds, 3) << " s, served " << m.served
              << ", qos-violations " << m.qosViolations << ", energy "
              << Table::num(m.energyJ, 2) << " J)\n";
}

std::string
measurementJson(const Measurement &m)
{
    return std::string("{\"devices\":") + std::to_string(m.devices)
        + ",\"contention\":" + obs::jsonNumber(m.contention)
        + ",\"arrivals\":" + std::to_string(m.arrivals)
        + ",\"served\":" + std::to_string(m.served)
        + ",\"qos_violations\":" + std::to_string(m.qosViolations)
        + ",\"energy_j\":" + obs::jsonNumber(m.energyJ)
        + ",\"seconds\":" + obs::jsonNumber(m.seconds)
        + ",\"device_steps_per_sec\":"
        + obs::jsonNumber(m.deviceStepsPerSec()) + ",\"checksum\":\""
        + std::to_string(m.checksum) + "\"}";
}

/** The million-device memory-footprint gate's result. */
struct MemoryGate {
    int devices = 0;
    std::int64_t arrivals = 0;
    std::int64_t served = 0;
    double seconds = 0.0;
    std::uint64_t peakRssBytes = 0;
    double bytesPerDevice = 0.0;
    double budgetBytes = 0.0;
    bool completed = false;

    bool
    withinBudget() const
    {
        return bytesPerDevice > 0.0 && bytesPerDevice <= budgetBytes;
    }
};

MemoryGate
runMemoryGate(int devices, double budgetBytes, std::uint64_t seed)
{
    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    // One short contention epoch sweep per device: the gate measures
    // the fleet's resident footprint, not sustained throughput, so two
    // requests per device keep the run to a few wall seconds even at a
    // million devices. Aggregate stats are mandatory at this scale —
    // a million ServeStats would out-weigh the devices themselves.
    serve::FleetConfig fleet = fleetConfig(devices, 2.0, 2, seed, 4);
    // Provision the shared edge/Wi-Fi at the contention model's peak
    // concurrency (contention x devices x full-epoch busy). The queue
    // penalty is `excess x mean service time`, and with the whole
    // fleet bursting at t=0 any under-provisioned capacity leaves an
    // excess proportional to the population — virtual drain time then
    // grows linearly with the fleet and total work quadratically. A
    // million devices queueing on 4 edge slots is a queueing-collapse
    // study, not a memory gate; here the epoch barrier still folds a
    // million usage records per sweep and brownout windows still land,
    // which is the machinery this gate must exercise at scale.
    fleet.infra.edgeCapacity = 2.0 * static_cast<double>(devices);
    fleet.infra.wifiCapacity = 2.0 * static_cast<double>(devices);
    fleet.aggregateStats = true;
    fleet.reportMemory = true;

    MemoryGate gate;
    gate.devices = devices;
    gate.budgetBytes = budgetBytes;
    const double start = now();
    const serve::FleetStats stats = serve::runFleet(sim, fleet, {});
    gate.seconds = now() - start;
    gate.arrivals = stats.totalArrivals();
    gate.served = stats.totalServed();
    gate.peakRssBytes = stats.peakRssBytes;
    gate.bytesPerDevice = stats.bytesPerDevice;
    gate.completed = gate.arrivals
        == static_cast<std::int64_t>(devices) * fleet.serve.totalRequests;
    return gate;
}

std::string
memoryGateJson(const MemoryGate &gate)
{
    return std::string("{\"devices\":") + std::to_string(gate.devices)
        + ",\"arrivals\":" + std::to_string(gate.arrivals)
        + ",\"served\":" + std::to_string(gate.served)
        + ",\"seconds\":" + obs::jsonNumber(gate.seconds)
        + ",\"peak_rss_bytes\":" + std::to_string(gate.peakRssBytes)
        + ",\"bytes_per_device\":" + obs::jsonNumber(gate.bytesPerDevice)
        + ",\"budget_bytes_per_device\":"
        + obs::jsonNumber(gate.budgetBytes) + ",\"within_budget\":"
        + (gate.withinBudget() ? "true" : "false") + ",\"completed\":"
        + (gate.completed ? "true" : "false") + "}";
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.getInt("--seed", 1));
    const std::int64_t requests = args.getInt("--requests", 100);
    const int checkDevices = args.getInt("--check-devices", 1000);
    const int memoryDevices = args.getInt("--memory-devices", 1000000);
    const double memoryBudget =
        static_cast<double>(args.getInt("--memory-budget", 4096));
    const std::string out = args.get("--out", "BENCH_fleet.json");
    const bool check = args.has("--check");
    const std::string scenarioPath = args.get("--scenario");

    // --scenario FILE: benchmark a declared fleet (population, arrival
    // schedule, shared infrastructure, churn — scenarios/*.scn) instead
    // of the synthetic sweep. The cross-shard checksum gate applies
    // unchanged: declarative churn and outages must be exactly as
    // shard-invariant as the synthetic workload.
    if (!scenarioPath.empty()) {
        const scenario::ScenarioSpec spec =
            bench::loadBenchScenario(scenarioPath);
        if (spec.population <= 1) {
            fatal("scenario '" + scenarioPath
                  + "' has device.population <= 1; bench_fleet "
                    "benchmarks fleets");
        }
        const sim::InferenceSimulator sim =
            sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
        const serve::FleetConfig fleet =
            bench::fleetConfigFromScenario(spec, sim);

        bench::printHeader(
            "Fleet serving: scenario '" + spec.name + "' ("
                + std::to_string(fleet.devices) + " devices)",
            "Gate: fleet completes; checksum bit-equal across shard "
            "counts");

        auto runShards = [&](int shards) {
            serve::FleetConfig config = fleet;
            config.shards = shards;
            Measurement m;
            m.devices = config.devices;
            m.contention = config.infra.contention;
            const double start = now();
            const serve::FleetStats stats =
                serve::runFleet(sim, config, {});
            m.seconds = now() - start;
            m.arrivals = stats.totalArrivals();
            m.served = stats.totalServed();
            m.qosViolations = stats.totalQosViolations();
            m.energyJ = stats.totalEnergyJ();
            m.checksum = stats.checksum;
            return m;
        };
        const Measurement gateA = runShards(1);
        printMeasurement(gateA);
        const Measurement gateB = runShards(4);
        const bool checksumsAgree = gateA.checksum == gateB.checksum;
        const bool completed = gateA.arrivals
                == static_cast<std::int64_t>(fleet.devices)
                    * fleet.serve.totalRequests
            && gateA.deviceStepsPerSec() > 0.0;
        std::cout << "cross-shard checksums "
                  << (checksumsAgree ? "agree" : "DISAGREE") << "\n";

        std::ofstream json(out);
        json << "{\"scenario\":\"" << spec.name
             << "\",\"gate\":{\"shards_1\":" << measurementJson(gateA)
             << ",\"shards_4\":" << measurementJson(gateB)
             << ",\"completed\":" << (completed ? "true" : "false")
             << ",\"checksums_agree\":"
             << (checksumsAgree ? "true" : "false") << "}}\n";
        std::cout << "Wrote " << out << "\n";

        if (check && (!completed || !checksumsAgree)) {
            std::cerr << "FAIL: scenario fleet gate "
                      << (completed ? "checksum mismatch"
                                    : "did not complete")
                      << "\n";
            return 1;
        }
        if (check) {
            std::cout << "PASS: gates met\n";
        }
        return 0;
    }

    bench::printHeader(
        "Fleet serving: device-steps/sec vs fleet size and contention",
        "Gates: memory budget at " + std::to_string(memoryDevices)
            + " devices; 1000-device 2x-contention fleet completes; "
              "checksum bit-equal across shard counts");

    // Memory gate first: peak RSS (VmHWM) is monotone, so the
    // million-device footprint is only attributable while nothing
    // larger has run in this process yet.
    const MemoryGate memGate = runMemoryGate(memoryDevices, memoryBudget,
                                             seed);
    std::cout << "memory gate: " << memGate.devices << " devices, peak "
              << Table::num(static_cast<double>(memGate.peakRssBytes)
                                / (1024.0 * 1024.0),
                            0)
              << " MiB, " << Table::num(memGate.bytesPerDevice, 0)
              << " bytes/device (budget "
              << Table::num(memGate.budgetBytes, 0) << ") in "
              << Table::num(memGate.seconds, 2) << " s — "
              << (memGate.withinBudget() && memGate.completed ? "ok"
                                                              : "FAIL")
              << "\n\n";

    // Scaling sweep: fleet size x contention.
    std::vector<Measurement> sweep;
    for (const int devices : {64, 256}) {
        for (const double contention : {1.0, 4.0}) {
            sweep.push_back(runFleetBench(devices, contention, requests,
                                          seed, 4));
            printMeasurement(sweep.back());
        }
    }

    // The gate scenario: a big fleet under 2x contention, run with two
    // shard counts; the checksums must match bit for bit.
    std::cout << "\ngate: " << checkDevices
              << "-device fleet @2x contention\n";
    const Measurement gateA =
        runFleetBench(checkDevices, 2.0, requests, seed, 1);
    printMeasurement(gateA);
    const Measurement gateB =
        runFleetBench(checkDevices, 2.0, requests, seed, 4);
    const bool checksumsAgree = gateA.checksum == gateB.checksum;
    const bool completed =
        gateA.arrivals
            == static_cast<std::int64_t>(checkDevices) * requests
        && gateA.deviceStepsPerSec() > 0.0;
    std::cout << "cross-shard checksums "
              << (checksumsAgree ? "agree" : "DISAGREE") << "\n";

    std::ofstream json(out);
    json << "{\"seed\":" << seed << ",\"requests_per_device\":" << requests
         << ",\"sweep\":[";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        json << (i > 0 ? "," : "") << measurementJson(sweep[i]);
    }
    json << "],\"gate\":{\"shards_1\":" << measurementJson(gateA)
         << ",\"shards_4\":" << measurementJson(gateB)
         << ",\"completed\":" << (completed ? "true" : "false")
         << ",\"checksums_agree\":" << (checksumsAgree ? "true" : "false")
         << "},\"memory_gate\":" << memoryGateJson(memGate) << "}\n";
    std::cout << "Wrote " << out << "\n";

    if (check) {
        if (!completed) {
            std::cerr << "FAIL: gate fleet did not complete all arrivals\n";
            return 1;
        }
        if (!checksumsAgree) {
            std::cerr << "FAIL: fleet checksum differs across shard "
                         "counts (determinism violation)\n";
            return 1;
        }
        if (!memGate.completed) {
            std::cerr << "FAIL: memory-gate fleet did not complete all "
                         "arrivals\n";
            return 1;
        }
        if (!memGate.withinBudget()) {
            std::cerr << "FAIL: memory gate "
                      << Table::num(memGate.bytesPerDevice, 0)
                      << " bytes/device exceeds budget "
                      << Table::num(memGate.budgetBytes, 0) << "\n";
            return 1;
        }
        std::cout << "PASS: gates met\n";
    }
    return 0;
}
