/**
 * @file
 * Fig. 2: energy efficiency (PPW, normalized to Edge (CPU)) and latency
 * (normalized to the QoS target) of three representative networks on
 * the three phones across the edge-cloud execution targets.
 *
 * Paper shape to reproduce: on the high-end phones, light NNs
 * (Inception v1, MobileNet v3) are most efficient at the edge while the
 * heavy MobileBERT needs the cloud; on the mid-end Moto X Force,
 * scaling out is always beneficial.
 */

#include <iostream>

#include "common.h"
#include "dnn/model_zoo.h"
#include "sim/qos.h"

using namespace autoscale;

namespace {

struct TargetSpec {
    const char *label;
    sim::TargetPlace place;
    platform::ProcKind proc;
    dnn::Precision precision;
};

const TargetSpec kTargets[] = {
    {"Edge (CPU)", sim::TargetPlace::Local, platform::ProcKind::MobileCpu,
     dnn::Precision::FP32},
    {"Edge (GPU)", sim::TargetPlace::Local, platform::ProcKind::MobileGpu,
     dnn::Precision::FP32},
    {"Edge (DSP)", sim::TargetPlace::Local, platform::ProcKind::MobileDsp,
     dnn::Precision::INT8},
    {"Connected", sim::TargetPlace::ConnectedEdge,
     platform::ProcKind::MobileDsp, dnn::Precision::INT8},
    {"Cloud", sim::TargetPlace::Cloud, platform::ProcKind::ServerGpu,
     dnn::Precision::FP32},
};

} // namespace

int
main()
{
    bench::printHeader(
        "Fig. 2: varying optimal DNN execution target",
        "Shape: light NNs -> edge on high-end phones; MobileBERT -> "
        "cloud; mid-end phone always scales out");

    const env::EnvState clean;
    for (const std::string &phone : platform::phoneNames()) {
        const sim::InferenceSimulator sim =
            sim::InferenceSimulator::makeDefault(platform::makePhone(phone));
        printBanner(std::cout, phone);
        Table table({"Network", "Target", "PPW vs Edge(CPU)",
                     "Latency/QoS", "Feasible"});
        for (const char *name :
             {"Inception v1", "MobileNet v3", "MobileBERT"}) {
            const dnn::Network &net = dnn::findModel(name);
            const sim::InferenceRequest request = sim::makeRequest(net);
            const sim::Outcome cpu_outcome =
                sim.expected(net, bench::edgeCpuFp32(sim), clean);
            for (const TargetSpec &spec : kTargets) {
                const platform::Processor *proc =
                    sim.deviceAt(spec.place).processor(spec.proc);
                if (proc == nullptr) {
                    table.addRow({name, spec.label, "-", "-", "absent"});
                    continue;
                }
                const sim::ExecutionTarget target = bench::topTarget(
                    sim, spec.place, spec.proc, spec.precision);
                const sim::Outcome o = sim.expected(net, target, clean);
                if (!o.feasible) {
                    table.addRow({name, spec.label, "-", "-",
                                  "unsupported"});
                    continue;
                }
                table.addRow({
                    name,
                    spec.label,
                    Table::times(cpu_outcome.energyJ / o.energyJ, 2),
                    Table::num(o.latencyMs / request.qosMs, 2),
                    "yes",
                });
            }
        }
        table.print(std::cout);
    }

    std::cout << "\nReading: PPW > 1 means more energy efficient than the"
                 " mobile CPU;\nLatency/QoS < 1 meets the QoS target.\n";
    return 0;
}
