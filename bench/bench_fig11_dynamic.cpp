/**
 * @file
 * Fig. 11: adaptability to stochastic variance — per-environment energy
 * efficiency (normalized to Edge (CPU FP32)) and QoS violations across
 * all Table IV environments, including the dynamic ones (D1-D4).
 *
 * Paper anchors: averaged over the environments, AutoScale improves
 * energy efficiency by 10.7x over Edge (CPU FP32), 2.2x over
 * Edge (Best), 1.4x over Cloud, and 3.2x over Connected Edge, with a
 * QoS-violation ratio similar to Opt.
 */

#include <iostream>
#include <map>

#include "baselines/fixed.h"
#include "baselines/oracle.h"
#include "common.h"
#include "dnn/model_zoo.h"
#include "util/stats.h"

using namespace autoscale;

int
main(int argc, char **argv)
{
    bench::printHeader(
        "Fig. 11: per-environment adaptability (S1-S5, D1-D4)",
        "Shape: AutoScale tracks Opt in every environment, static and "
        "dynamic");

    const Args args(argc, argv);
    const bench::RunConfig rc = bench::runConfigFromArgs(args);
    obs::ObsOutput obs_out(rc.obs);

    sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    if (obs_out.config().metering()) {
        sim.setObserver(&obs_out.metrics());
    }
    const std::vector<env::ScenarioId> all = env::allScenarios();

    // One AutoScale scheduler trained across every environment (the
    // deployment setting: it has seen the variance space).
    auto autoscale_policy = bench::trainOnAll(sim, all, 1101);

    // The fixed baselines and the oracle carry no learning state, so
    // each (environment, policy, seed) cell is independent: build the
    // policy inside the task and fan the cells out across workers.
    struct Comparator {
        std::string name;
        std::function<std::unique_ptr<baselines::SchedulingPolicy>()> make;
    };
    const std::vector<Comparator> comparators = {
        {"Edge (CPU FP32)",
         [&] { return baselines::makeEdgeCpuFp32Policy(sim); }},
        {"Edge (Best)", [&] { return baselines::makeEdgeBestPolicy(sim); }},
        {"Cloud", [&] { return baselines::makeCloudPolicy(sim); }},
        {"Connected Edge",
         [&] { return baselines::makeConnectedEdgePolicy(sim); }},
        {"Opt", [&] { return baselines::makeOptOracle(sim); }},
    };

    harness::EvalOptions options;
    options.runsPerCombo = bench::kEvalRunsPerCombo;
    options.seed = 1102;

    // All (environment x comparator) cells in one flat fan-out. With
    // observability on, each cell records into private sinks that are
    // merged below in cell-index order (then AutoScale's serial walk
    // appends), so the export is byte-identical for every --jobs value.
    struct CellResult {
        harness::RunStats stats;
        obs::TraceRecorder trace;
        obs::MetricsRegistry metrics;
    };
    const std::size_t cells = all.size() * comparators.size();
    const std::vector<CellResult> cell_results =
        harness::parallelIndexed(cells, rc.jobs, [&](std::size_t cell) {
            const env::ScenarioId id = all[cell / comparators.size()];
            const Comparator &comparator =
                comparators[cell % comparators.size()];
            CellResult result;
            obs::ObsContext local;
            if (obs_out.config().tracing()) {
                local.trace = &result.trace;
            }
            if (obs_out.config().metering()) {
                local.metrics = &result.metrics;
            }
            result.stats = bench::runSeeds(
                options.seed, rc.seeds, 1, local,
                [&](std::uint64_t seed,
                    const obs::ObsContext &replicate_obs) {
                    auto policy = comparator.make();
                    harness::EvalOptions replicate = options;
                    replicate.seed = seed;
                    replicate.obs = replicate_obs;
                    return harness::evaluatePolicy(
                        *policy, sim, harness::allZooNetworks(), {id},
                        replicate);
                });
            return result;
        });
    std::vector<harness::RunStats> cell_stats;
    cell_stats.reserve(cell_results.size());
    for (const CellResult &result : cell_results) {
        cell_stats.push_back(result.stats);
        if (obs_out.config().tracing()) {
            obs_out.trace().append(result.trace);
        }
        if (obs_out.config().metering()) {
            obs_out.metrics().merge(result.metrics);
        }
    }

    // Per-environment rows plus per-policy aggregates.
    std::map<std::string, std::vector<double>> ppw;
    std::map<std::string, std::vector<double>> qos;

    Table table({"Env", "Edge(Best)", "Cloud", "Connected", "AutoScale",
                 "Opt", "AutoScale QoS", "Opt QoS"});
    for (std::size_t env_index = 0; env_index < all.size(); ++env_index) {
        const env::ScenarioId id = all[env_index];
        std::map<std::string, harness::RunStats> stats;
        for (std::size_t i = 0; i < comparators.size(); ++i) {
            stats.emplace(
                comparators[i].name,
                cell_stats[env_index * comparators.size() + i]);
        }
        // The AutoScale policy keeps learning online, so it walks the
        // environments (and seed replicates) serially on this thread,
        // recording straight into the run-level sinks.
        const harness::RunStats as_stats = bench::runSeeds(
            options.seed, rc.seeds, 1, obs_out.context(),
            [&](std::uint64_t seed, const obs::ObsContext &replicate_obs) {
                harness::EvalOptions replicate = options;
                replicate.seed = seed;
                replicate.obs = replicate_obs;
                return harness::evaluatePolicy(
                    *autoscale_policy, sim, harness::allZooNetworks(),
                    {id}, replicate);
            });
        const double cpu = stats.at("Edge (CPU FP32)").ppw();

        auto norm = [&](const std::string &name) {
            const double value = stats.at(name).ppw() / cpu;
            ppw[name].push_back(value);
            qos[name].push_back(stats.at(name).qosViolationRatio());
            return value;
        };
        ppw["Edge (CPU FP32)"].push_back(1.0);
        qos["Edge (CPU FP32)"].push_back(
            stats.at("Edge (CPU FP32)").qosViolationRatio());
        const double best = norm("Edge (Best)");
        const double cloud = norm("Cloud");
        const double connected = norm("Connected Edge");
        const double opt = norm("Opt");
        ppw["AutoScale"].push_back(as_stats.ppw() / cpu);
        qos["AutoScale"].push_back(as_stats.qosViolationRatio());

        table.addRow({env::scenarioName(id), Table::times(best, 1),
                      Table::times(cloud, 1), Table::times(connected, 1),
                      Table::times(as_stats.ppw() / cpu, 1),
                      Table::times(opt, 1),
                      Table::pct(as_stats.qosViolationRatio()),
                      Table::pct(stats.at("Opt").qosViolationRatio())});
    }
    table.print(std::cout);

    printBanner(std::cout, "Average improvement of AutoScale");
    auto ratio_to = [&](const std::string &name) {
        std::vector<double> ratios;
        for (std::size_t i = 0; i < ppw["AutoScale"].size(); ++i) {
            ratios.push_back(ppw["AutoScale"][i] / ppw[name][i]);
        }
        return mean(ratios);
    };
    Table summary({"Versus", "Measured", "Paper"});
    summary.addRow({"Edge (CPU FP32)",
                    Table::times(ratio_to("Edge (CPU FP32)"), 1),
                    "10.7x"});
    summary.addRow({"Edge (Best)",
                    Table::times(ratio_to("Edge (Best)"), 1), "2.2x"});
    summary.addRow({"Cloud", Table::times(ratio_to("Cloud"), 1), "1.4x"});
    summary.addRow({"Connected Edge",
                    Table::times(ratio_to("Connected Edge"), 1), "3.2x"});
    summary.print(std::cout);
    std::cout << "AutoScale avg QoS violations: "
              << Table::pct(mean(qos["AutoScale"]))
              << " vs Opt " << Table::pct(mean(qos["Opt"])) << '\n';
    obs_out.finalize(&std::cout);
    return 0;
}
