/**
 * @file
 * Generalization study: how well does a Q-table trained only on the ten
 * Table III workloads schedule *never-seen* networks? This probes the
 * real content of the Table I state abstraction: a synthetic network
 * whose (CONV, FC, RC, MAC) bins were covered during training inherits
 * the learned policy; one landing in an uncovered bin faces a cold
 * (random-initialized) Q-row until online learning converges.
 */

#include <iostream>
#include <set>

#include "baselines/oracle.h"
#include "common.h"
#include "core/state.h"
#include "dnn/model_zoo.h"
#include "dnn/synthetic.h"

using namespace autoscale;

int
main()
{
    bench::printHeader(
        "Extension: generalization to unseen (synthetic) networks",
        "Covered Table I bins transfer zero-shot; uncovered bins need "
        "the online-learning warm-up");

    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());

    // Train on the zoo only, across the static environments.
    auto policy = bench::trainOnAll(sim, env::staticScenarios(), 1901);
    policy->setLearning(false); // freeze: pure zero-shot evaluation

    // The NN-feature bins the zoo training visited.
    core::StateEncoder encoder;
    std::set<int> covered;
    for (const auto &net : dnn::modelZoo()) {
        core::StateFeatures features =
            core::makeStateFeatures(net, env::EnvState{});
        // Identify the NN-feature part only (variance features zeroed).
        features.coCpuUtil = 0.0;
        features.coMemUtil = 0.0;
        features.rssiWlanDbm = -55.0;
        features.rssiP2pDbm = -55.0;
        covered.insert(encoder.encode(features));
    }
    std::cout << "Zoo training covers " << covered.size()
              << " NN-feature bins of the 96 possible.\n";

    baselines::OptOracle oracle(sim);
    Rng rng(1902);
    const env::EnvState clean;

    struct Bucket {
        int count = 0;
        double policy_j = 0.0;
        double opt_j = 0.0;
        double cpu_j = 0.0;
        int qos_violations = 0;
    };
    Bucket in_bin;
    Bucket out_of_bin;

    const int kNetworks = 60;
    for (int i = 0; i < kNetworks; ++i) {
        const dnn::Network net =
            dnn::synthesizeNetwork(dnn::randomSpec(rng));
        const sim::InferenceRequest request = sim::makeRequest(net);

        core::StateFeatures features =
            core::makeStateFeatures(net, clean);
        features.coCpuUtil = 0.0;
        features.coMemUtil = 0.0;
        features.rssiWlanDbm = -55.0;
        features.rssiP2pDbm = -55.0;
        Bucket &bucket = covered.count(encoder.encode(features)) > 0
            ? in_bin : out_of_bin;

        const baselines::Decision decision =
            policy->decide(request, clean, rng);
        policy->feedback(sim.expected(net, decision.target, clean));
        policy->finishEpisode();
        sim::Outcome outcome =
            sim.expected(net, decision.target, clean);
        if (!outcome.feasible) {
            // CPU fallback, as in the harness.
            outcome = sim.expected(net, bench::edgeCpuFp32(sim), clean);
        }
        const sim::Outcome opt = oracle.optimalOutcome(request, clean);
        const sim::Outcome cpu =
            sim.expected(net, bench::edgeCpuFp32(sim), clean);

        ++bucket.count;
        bucket.policy_j += outcome.energyJ;
        bucket.opt_j += opt.energyJ;
        bucket.cpu_j += cpu.energyJ;
        if (outcome.latencyMs >= request.qosMs) {
            ++bucket.qos_violations;
        }
    }

    Table table({"Synthetic networks", "Count", "PPW vs Edge(CPU)",
                 "PPW/Opt", "QoS violations"});
    auto add = [&](const char *label, const Bucket &bucket) {
        if (bucket.count == 0) {
            table.addRow({label, "0", "-", "-", "-"});
            return;
        }
        table.addRow({label, std::to_string(bucket.count),
                      Table::times(bucket.cpu_j / bucket.policy_j, 1),
                      Table::pct(bucket.opt_j / bucket.policy_j),
                      Table::pct(static_cast<double>(bucket.qos_violations)
                                 / bucket.count)});
    };
    add("In a trained bin (zero-shot)", in_bin);
    add("In an uncovered bin (cold)", out_of_bin);
    table.print(std::cout);

    std::cout << "\nReading: zero-shot decisions in covered bins inherit"
                 " near-oracle quality\n(this is what makes the paper's"
                 " leave-one-out protocol work at all);\nuncovered bins"
                 " schedule from random Q values until the deployment's\n"
                 "online learning converges — the paper's Fig. 14"
                 " convergence phase.\n";
    return 0;
}
