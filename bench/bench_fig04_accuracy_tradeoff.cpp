/**
 * @file
 * Fig. 4: energy efficiency (PPW normalized to Edge (CPU FP32)) versus
 * inference accuracy across precision-augmented execution targets, plus
 * the induced Opt shift when the accuracy requirement rises from 50% to
 * 65%.
 *
 * Paper shape to reproduce: at a 50% requirement the low-precision
 * local targets win (DSP/CPU INT8); at 65% the INT8 options fail the
 * requirement and the optimum shifts toward full-precision / cloud
 * execution.
 */

#include <iostream>

#include "baselines/oracle.h"
#include "common.h"
#include "dnn/model_zoo.h"

using namespace autoscale;

int
main()
{
    bench::printHeader(
        "Fig. 4: inference accuracy vs energy efficiency",
        "Shape: 50% target -> low-precision edge optimal; 65% target -> "
        "optimum shifts to full precision / cloud");

    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    baselines::OptOracle oracle(sim);
    const env::EnvState clean;

    struct Spec {
        const char *label;
        sim::TargetPlace place;
        platform::ProcKind proc;
        dnn::Precision precision;
    };
    const Spec specs[] = {
        {"CPU FP32", sim::TargetPlace::Local,
         platform::ProcKind::MobileCpu, dnn::Precision::FP32},
        {"CPU INT8", sim::TargetPlace::Local,
         platform::ProcKind::MobileCpu, dnn::Precision::INT8},
        {"GPU FP32", sim::TargetPlace::Local,
         platform::ProcKind::MobileGpu, dnn::Precision::FP32},
        {"GPU FP16", sim::TargetPlace::Local,
         platform::ProcKind::MobileGpu, dnn::Precision::FP16},
        {"DSP INT8", sim::TargetPlace::Local,
         platform::ProcKind::MobileDsp, dnn::Precision::INT8},
        {"Cloud FP32", sim::TargetPlace::Cloud,
         platform::ProcKind::ServerGpu, dnn::Precision::FP32},
    };

    for (const char *name : {"Inception v1", "MobileNet v3"}) {
        const dnn::Network &net = dnn::findModel(name);
        printBanner(std::cout, std::string(name) + " on Mi8Pro");
        const sim::Outcome cpu_outcome =
            sim.expected(net, bench::edgeCpuFp32(sim), clean);
        Table table({"Target", "Accuracy", "PPW vs CPU FP32",
                     "Meets 50%", "Meets 65%"});
        for (const Spec &spec : specs) {
            const sim::ExecutionTarget target = bench::topTarget(
                sim, spec.place, spec.proc, spec.precision);
            const sim::Outcome o = sim.expected(net, target, clean);
            if (!o.feasible) {
                continue;
            }
            table.addRow({
                spec.label,
                Table::num(o.accuracyPct, 1) + "%",
                Table::times(cpu_outcome.energyJ / o.energyJ, 2),
                o.accuracyPct >= 50.0 ? "yes" : "no",
                o.accuracyPct >= 65.0 ? "yes" : "no",
            });
        }
        table.print(std::cout);

        // The induced Opt shift.
        Table shift({"Accuracy target", "Opt target", "Accuracy",
                     "Energy (mJ)"});
        for (double target_pct : {50.0, 65.0, 70.0}) {
            const sim::InferenceRequest request =
                sim::makeRequest(net, target_pct);
            const sim::ExecutionTarget opt =
                oracle.optimalTarget(request, clean);
            const sim::Outcome o = sim.expected(net, opt, clean);
            shift.addRow({Table::num(target_pct, 0) + "%", opt.label(),
                          Table::num(o.accuracyPct, 1) + "%",
                          Table::num(o.energyJ * 1e3, 1)});
        }
        shift.print(std::cout);
    }

    std::cout << "\nPaper anchors: \"If the accuracy requirement is 50%,"
                 " the optimal target\nmay be DSP INT8 and CPU INT8 for"
                 " Inception v1 and MobileNet v3 ... If the\naccuracy"
                 " requirement is 65%, the optimal target should be"
                 " shifted to the cloud.\"\n";
    return 0;
}
