/**
 * @file
 * Shared helpers for the per-figure benchmark binaries: canonical
 * execution targets, AutoScale training at the paper's budget, and
 * paper-vs-measured reporting.
 */

#ifndef AUTOSCALE_BENCH_COMMON_H_
#define AUTOSCALE_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "env/scenario.h"
#include "harness/autoscale_policy.h"
#include "harness/experiment.h"
#include "harness/parallel.h"
#include "obs/obs_output.h"
#include "platform/device_zoo.h"
#include "scenario/load.h"
#include "serve/fleet.h"
#include "sim/simulator.h"
#include "util/args.h"
#include "util/table.h"

namespace autoscale::bench {

/**
 * Training budget per (network, scenario). Section V-C uses 100 runs
 * per NN per runtime-variance *state*; a dynamic scenario spreads its
 * runs over several Table I variance bins, and the optimistic Q-init
 * sweeps the ~66 actions per state, so the per-scenario budget carries
 * headroom for both.
 */
constexpr int kTrainRunsPerCombo = 800;

/** Evaluation inferences per (network, scenario). */
constexpr int kEvalRunsPerCombo = 30;

/** Canonical whole-model target at a processor's top frequency. */
sim::ExecutionTarget topTarget(const sim::InferenceSimulator &sim,
                               sim::TargetPlace place,
                               platform::ProcKind proc,
                               dnn::Precision precision);

/** The Edge (CPU FP32) baseline target for @p sim's local device. */
sim::ExecutionTarget edgeCpuFp32(const sim::InferenceSimulator &sim);

/**
 * Build and train an AutoScale policy on every zoo network (used when a
 * figure evaluates aggregate behaviour rather than the LOO protocol).
 */
std::unique_ptr<harness::AutoScalePolicy> trainOnAll(
    const sim::InferenceSimulator &sim,
    const std::vector<env::ScenarioId> &scenarios, std::uint64_t seed,
    bool streaming = false, double accuracyTargetPct = 50.0);

/**
 * Seed replicates and worker count for a benchmark run, parsed from
 * the standard `--seeds N` / `--jobs N` flags. `seeds` defaults to 1
 * (the historical single-seed behaviour); `jobs` defaults to the
 * hardware concurrency.
 */
struct RunConfig {
    int seeds = 1;
    int jobs = 1;
    /** `--trace` / `--trace-format` / `--metrics` passthrough. */
    obs::ObsConfig obs;
};

/** Parse `--seeds` / `--jobs` / observability flags (and report). */
RunConfig runConfigFromArgs(const Args &args);

/**
 * Evaluate @p fn once per seed replicate across up to @p jobs workers
 * and return the index-ordered merge. Replicate 0 receives @p baseSeed
 * itself (so `--seeds 1` reproduces the historical single-seed
 * numbers); replicate i > 0 receives an independent seed derived from
 * (baseSeed, i) via SplitMix64. The merged result is bit-identical for
 * every jobs value. @p fn must build everything stateful (policies,
 * scenarios) itself: it runs concurrently and may only share the
 * simulator and networks read-only.
 */
harness::RunStats runSeeds(
    std::uint64_t baseSeed, int replicates, int jobs,
    const std::function<harness::RunStats(std::uint64_t seed)> &fn);

/**
 * Observability-aware variant of runSeeds: each replicate records into
 * private trace/metrics sinks passed to @p fn, which are merged into
 * @p obs in replicate-index order after the parallel region. The
 * exported files are therefore byte-identical for every jobs value.
 * With observability fully disabled the per-replicate context is
 * disabled too (null sinks, one branch per decision).
 */
harness::RunStats runSeeds(
    std::uint64_t baseSeed, int replicates, int jobs,
    const obs::ObsContext &obs,
    const std::function<harness::RunStats(
        std::uint64_t seed, const obs::ObsContext &obs)> &fn);

/**
 * Load a scenario file for a benchmark: exactly one variant, zero
 * diagnostics — anything else is fatal(). Benchmarks pin one concrete
 * workload per run; sweep the [variant] axes from the outside.
 */
scenario::ScenarioSpec loadBenchScenario(const std::string &path);

/**
 * Apply @p spec's serving-relevant fields (env base, workload, seed,
 * arrival schedule, QoS depths, retry, faults) onto @p config.
 * Relative arrival rates resolve against @p sim's nominal capacity
 * exactly like the CLI's --rate-x.
 */
void applyScenarioToServe(const scenario::ScenarioSpec &spec,
                          const sim::InferenceSimulator &sim,
                          serve::ServeConfig *config);

/**
 * Build a complete FleetConfig from @p spec: the serving template via
 * applyScenarioToServe plus population, epoch/merge cadence, shared
 * infrastructure, and the churn schedule (DESIGN.md §17).
 */
serve::FleetConfig fleetConfigFromScenario(
    const scenario::ScenarioSpec &spec,
    const sim::InferenceSimulator &sim);

/** "measured (paper: X)" annotation cell. */
std::string withPaper(const std::string &measured,
                      const std::string &paper);

/** Print the standard header naming the experiment and its paper ref. */
void printHeader(const std::string &figure, const std::string &claim);

} // namespace autoscale::bench

#endif // AUTOSCALE_BENCH_COMMON_H_
