/**
 * @file
 * Fig. 9 — the headline result. Average energy efficiency (PPW,
 * normalized to Edge (CPU FP32)) and QoS violation ratio of AutoScale
 * versus the fixed baselines, the layer-partitioning prior work
 * (MOSAIC, NeuroSurgeon), and the Opt oracle, over the three phones and
 * the static environments (S1-S5), non-streaming use cases, with
 * leave-one-out cross-validation across the ten workloads.
 *
 * Paper anchors: AutoScale improves average energy efficiency by 9.8x
 * over Edge (CPU FP32), 2.3x over Edge (Best), 1.6x over Cloud, 2.7x
 * over Connected Edge, 1.9x over MOSAIC, and 1.2x over NeuroSurgeon,
 * landing within 3.2% of Opt with a QoS-violation gap of only 1.9%.
 */

#include <iostream>
#include <map>

#include "baselines/fixed.h"
#include "baselines/oracle.h"
#include "baselines/partitioners.h"
#include "common.h"
#include "dnn/model_zoo.h"
#include "util/stats.h"

using namespace autoscale;

int
main(int argc, char **argv)
{
    bench::printHeader(
        "Fig. 9: energy efficiency and QoS violations, static "
        "environments",
        "Shape: AutoScale ~= Opt >> fixed baselines; largest win over "
        "Edge (CPU FP32)");

    const Args args(argc, argv);
    const bench::RunConfig rc = bench::runConfigFromArgs(args);
    obs::ObsOutput obs_out(rc.obs);

    const std::vector<env::ScenarioId> scenarios = env::staticScenarios();
    harness::EvalOptions options;
    options.runsPerCombo = bench::kEvalRunsPerCombo;
    options.seed = 909;

    // Aggregated PPW ratios (vs Edge CPU) per policy across devices.
    std::map<std::string, std::vector<double>> ppw_ratios;
    std::map<std::string, std::vector<double>> qos_ratios;
    std::vector<double> autoscale_vs_opt;

    for (const std::string &phone : platform::phoneNames()) {
        const sim::InferenceSimulator sim =
            sim::InferenceSimulator::makeDefault(platform::makePhone(phone));
        printBanner(std::cout, phone);

        // AutoScale under the paper's leave-one-out protocol, merged
        // over the seed replicates. Parallelism goes to the outermost
        // loop with work: the seed replicates when there are several,
        // otherwise the ten LOO folds inside the single replicate.
        const int fold_jobs = rc.seeds > 1 ? 1 : rc.jobs;
        const harness::RunStats as_stats = bench::runSeeds(
            options.seed, rc.seeds, rc.jobs, obs_out.context(),
            [&](std::uint64_t seed, const obs::ObsContext &replicate_obs) {
                harness::EvalOptions replicate = options;
                replicate.seed = seed;
                replicate.jobs = fold_jobs;
                replicate.obs = replicate_obs;
                return harness::evaluateAutoScaleLoo(
                    sim, harness::allZooNetworks(), scenarios,
                    bench::kTrainRunsPerCombo, replicate);
            });

        // Everyone else under identical evaluation sequences. The
        // policies are independent, so they evaluate concurrently;
        // each task builds its own policy (they learn/accumulate
        // state) and only shares the simulator read-only.
        struct Comparator {
            std::string name;
            std::function<std::unique_ptr<baselines::SchedulingPolicy>()>
                make;
        };
        const std::vector<Comparator> others = {
            {"Edge (CPU FP32)",
             [&] { return baselines::makeEdgeCpuFp32Policy(sim); }},
            {"Edge (Best)",
             [&] { return baselines::makeEdgeBestPolicy(sim); }},
            {"Cloud", [&] { return baselines::makeCloudPolicy(sim); }},
            {"Connected Edge",
             [&] { return baselines::makeConnectedEdgePolicy(sim); }},
            {"NeuroSurgeon",
             [&] { return baselines::makeNeuroSurgeonPolicy(sim); }},
            {"MOSAIC", [&] { return baselines::makeMosaicPolicy(sim); }},
            {"Opt", [&] { return baselines::makeOptOracle(sim); }},
        };
        // With observability on, each concurrent comparator records
        // into private sinks, merged below in listed order so the
        // exported files stay byte-identical for every --jobs value.
        struct ComparatorResult {
            harness::RunStats stats;
            obs::TraceRecorder trace;
            obs::MetricsRegistry metrics;
        };
        const std::vector<ComparatorResult> other_results =
            harness::parallelIndexed(
                others.size(), rc.jobs, [&](std::size_t i) {
                    ComparatorResult result;
                    obs::ObsContext local;
                    if (obs_out.config().tracing()) {
                        local.trace = &result.trace;
                    }
                    if (obs_out.config().metering()) {
                        local.metrics = &result.metrics;
                    }
                    result.stats = bench::runSeeds(
                        options.seed, rc.seeds, 1, local,
                        [&](std::uint64_t seed,
                            const obs::ObsContext &replicate_obs) {
                            auto policy = others[i].make();
                            harness::EvalOptions replicate = options;
                            replicate.seed = seed;
                            replicate.obs = replicate_obs;
                            return harness::evaluatePolicy(
                                *policy, sim, harness::allZooNetworks(),
                                scenarios, replicate);
                        });
                    return result;
                });
        std::map<std::string, harness::RunStats> stats;
        for (std::size_t i = 0; i < others.size(); ++i) {
            stats.emplace(others[i].name, other_results[i].stats);
            if (obs_out.config().tracing()) {
                obs_out.trace().append(other_results[i].trace);
            }
            if (obs_out.config().metering()) {
                obs_out.metrics().merge(other_results[i].metrics);
            }
        }
        const double cpu_ppw = stats.at("Edge (CPU FP32)").ppw();

        Table table({"Policy", "PPW vs Edge(CPU FP32)", "QoS violations"});
        auto add_row = [&](const std::string &name,
                           const harness::RunStats &s) {
            table.addRow({name, Table::times(s.ppw() / cpu_ppw, 2),
                          Table::pct(s.qosViolationRatio())});
            ppw_ratios[name].push_back(s.ppw() / cpu_ppw);
            qos_ratios[name].push_back(s.qosViolationRatio());
        };
        add_row("Edge (CPU FP32)", stats.at("Edge (CPU FP32)"));
        add_row("Edge (Best)", stats.at("Edge (Best)"));
        add_row("Cloud", stats.at("Cloud"));
        add_row("Connected Edge", stats.at("Connected Edge"));
        add_row("NeuroSurgeon", stats.at("NeuroSurgeon"));
        add_row("MOSAIC", stats.at("MOSAIC"));
        add_row("AutoScale", as_stats);
        add_row("Opt", stats.at("Opt"));
        table.print(std::cout);

        autoscale_vs_opt.push_back(as_stats.ppw()
                                   / stats.at("Opt").ppw());
    }

    printBanner(std::cout, "Average improvement of AutoScale (3 devices)");
    auto ratio_to = [&](const std::string &name) {
        std::vector<double> ratios;
        for (std::size_t i = 0; i < ppw_ratios["AutoScale"].size(); ++i) {
            ratios.push_back(ppw_ratios["AutoScale"][i]
                             / ppw_ratios[name][i]);
        }
        return mean(ratios);
    };
    Table summary({"Versus", "Measured", "Paper"});
    summary.addRow({"Edge (CPU FP32)", Table::times(ratio_to(
                        "Edge (CPU FP32)"), 1), "9.8x"});
    summary.addRow({"Edge (Best)",
                    Table::times(ratio_to("Edge (Best)"), 1), "2.3x"});
    summary.addRow({"Cloud", Table::times(ratio_to("Cloud"), 1), "1.6x"});
    summary.addRow({"Connected Edge",
                    Table::times(ratio_to("Connected Edge"), 1), "2.7x"});
    summary.addRow({"MOSAIC", Table::times(ratio_to("MOSAIC"), 1),
                    "1.9x"});
    summary.addRow({"NeuroSurgeon",
                    Table::times(ratio_to("NeuroSurgeon"), 1), "1.2x"});
    summary.addRow({"Opt (gap)",
                    Table::pct(1.0 - mean(autoscale_vs_opt)), "3.2%"});
    summary.print(std::cout);

    const double as_qos = mean(qos_ratios["AutoScale"]);
    const double opt_qos = mean(qos_ratios["Opt"]);
    std::cout << "QoS-violation gap to Opt: "
              << bench::withPaper(Table::pct(as_qos - opt_qos), "1.9%")
              << '\n';
    obs_out.finalize(&std::cout);
    return 0;
}
