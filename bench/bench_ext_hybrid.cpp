/**
 * @file
 * Extension study (paper footnote 4: "model partitioning at layer
 * granularity ... is complementary to and can be applied on top of
 * AutoScale"): the HybridScheduler adds 25/50/75% partition-point
 * actions to AutoScale's action space and learns over them with the
 * same states and reward. Partitioning should pay off when whole-model
 * offload is throttled by the uplink (weak Wi-Fi), because a locally
 * computed prefix shrinks the bytes that cross the link.
 */

#include <iostream>

#include "baselines/fixed.h"
#include "baselines/oracle.h"
#include "common.h"
#include "dnn/model_zoo.h"
#include "harness/hybrid_policy.h"

using namespace autoscale;

namespace {

void
compare(const sim::InferenceSimulator &sim,
        const std::vector<env::ScenarioId> &scenarios, const char *label,
        std::uint64_t seed)
{
    printBanner(std::cout, label);

    auto plain = harness::makeAutoScalePolicy(sim, seed);
    Rng rng1(seed + 1);
    harness::trainPolicy(*plain, sim, harness::allZooNetworks(), scenarios,
                         bench::kTrainRunsPerCombo, rng1);
    plain->setExploration(false);

    auto hybrid = harness::makeHybridAutoScalePolicy(sim, seed);
    Rng rng2(seed + 1);
    harness::trainPolicy(*hybrid, sim, harness::allZooNetworks(),
                         scenarios, bench::kTrainRunsPerCombo, rng2);
    hybrid->setExploration(false);

    harness::EvalOptions options;
    options.runsPerCombo = bench::kEvalRunsPerCombo;
    options.seed = seed + 2;
    options.compareOracle = false;

    auto cpu = baselines::makeEdgeCpuFp32Policy(sim);
    const harness::RunStats cpu_stats = harness::evaluatePolicy(
        *cpu, sim, harness::allZooNetworks(), scenarios, options);
    const harness::RunStats plain_stats = harness::evaluatePolicy(
        *plain, sim, harness::allZooNetworks(), scenarios, options);
    const harness::RunStats hybrid_stats = harness::evaluatePolicy(
        *hybrid, sim, harness::allZooNetworks(), scenarios, options);

    Table table({"Policy", "PPW vs Edge(CPU)", "QoS violations",
                 "Partitioned decisions"});
    table.addRow({"AutoScale",
                  Table::times(plain_stats.ppw() / cpu_stats.ppw(), 2),
                  Table::pct(plain_stats.qosViolationRatio()), "0%"});
    table.addRow({"AutoScale+Partition",
                  Table::times(hybrid_stats.ppw() / cpu_stats.ppw(), 2),
                  Table::pct(hybrid_stats.qosViolationRatio()),
                  Table::pct(hybrid_stats.decisionShare(
                      "Partitioned (Cloud)"))});
    table.print(std::cout);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Extension: layer partitioning on top of AutoScale (footnote 4)",
        "Partition actions join the learned action space; they matter "
        "most when the uplink is the bottleneck");

    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());

    compare(sim, env::staticScenarios(),
            "All static environments (S1-S5), Mi8Pro", 1701);
    compare(sim, {env::ScenarioId::S4},
            "Weak Wi-Fi only (S4), Mi8Pro", 1711);

    const sim::InferenceSimulator moto =
        sim::InferenceSimulator::makeDefault(platform::makeMotoXForce());
    compare(moto, {env::ScenarioId::S4},
            "Weak Wi-Fi only (S4), Moto X Force (no DSP)", 1721);

    std::cout << "\nReading: the learner is free to pick partition"
                 " actions but (correctly)\nrarely does — early split"
                 " points ship activation maps larger than the\n"
                 "compressed input, and late split points leave most of"
                 " the compute on\nthe slower local processor. This"
                 " matches the paper's own reasoning for\nscheduling at"
                 " model granularity (footnote 4: partitioning adds"
                 " context\nswitching overhead); the extension shows the"
                 " action space can express it\nand that Q-learning"
                 " prices it correctly.\n";
    return 0;
}
