/**
 * @file
 * Section IV-A state ablation: remove each Table I feature from the
 * state encoding, retrain, and measure the prediction-accuracy and
 * energy-efficiency degradation.
 *
 * Paper anchor: "removing any one state degrades accuracy by 32.1% on
 * average. This means that all the states are essential."
 */

#include <iostream>

#include "common.h"
#include "core/state.h"
#include "dnn/model_zoo.h"
#include "util/stats.h"

using namespace autoscale;

int
main()
{
    bench::printHeader(
        "State ablation (Section IV-A)",
        "Shape: removing any Table I feature hurts prediction accuracy "
        "and PPW");

    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    // Mixed environments so every feature matters: interference, weak
    // links, and the signal-varying dynamic scenario.
    const std::vector<env::ScenarioId> scenarios{
        env::ScenarioId::S1, env::ScenarioId::S2, env::ScenarioId::S3,
        env::ScenarioId::S4, env::ScenarioId::S5, env::ScenarioId::D3};

    harness::EvalOptions options;
    options.runsPerCombo = bench::kEvalRunsPerCombo;
    options.seed = 1501;

    auto evaluate = [&](const core::SchedulerConfig &config) {
        auto policy = harness::makeAutoScalePolicy(sim, 1502, config);
        Rng rng(1503);
        harness::trainAutoScale(*policy, sim, harness::allZooNetworks(),
                                scenarios, bench::kTrainRunsPerCombo,
                                rng);
        policy->scheduler().setExploration(false);
        return harness::evaluatePolicy(*policy, sim,
                                       harness::allZooNetworks(),
                                       scenarios, options);
    };

    const harness::RunStats full = evaluate(core::SchedulerConfig{});
    std::cout << "Full encoder: prediction accuracy "
              << Table::pct(full.predictionAccuracy())
              << ", within-1%-of-Opt "
              << Table::pct(full.nearOptimalRatio()) << ", PPW "
              << Table::num(full.ppw(), 1) << "\n";

    Table table({"Removed state", "Prediction accuracy",
                 "Accuracy degradation", "Within 1% of Opt",
                 "PPW vs full", "QoS violations"});
    std::vector<double> degradations;
    for (int i = 0; i < core::kNumFeatures; ++i) {
        const auto feature = static_cast<core::Feature>(i);
        core::SchedulerConfig config;
        config.encoder.disableFeature(feature);
        const harness::RunStats ablated = evaluate(config);
        const double degradation = 1.0
            - ablated.predictionAccuracy() / full.predictionAccuracy();
        degradations.push_back(degradation);
        table.addRow({core::featureName(feature),
                      Table::pct(ablated.predictionAccuracy()),
                      Table::pct(degradation),
                      Table::pct(ablated.nearOptimalRatio()),
                      Table::pct(ablated.ppw() / full.ppw()),
                      Table::pct(ablated.qosViolationRatio())});
    }
    table.print(std::cout);

    std::cout << "Average accuracy degradation when removing one state: "
              << bench::withPaper(Table::pct(mean(degradations)),
                                  "32.1%")
              << "\nNote: the tabular learner hedges gracefully when "
                 "bins are merged (it learns\nthe best single action "
                 "for the mixture), so the degradation here is milder\n"
                 "than the paper's; the per-feature QoS and PPW columns "
                 "show where each\nfeature pays off.\n";
    return 0;
}
