/**
 * @file
 * Serving extension: admission control and circuit breakers online.
 *
 * Part 1 sweeps the arrival rate from half to 4x the server's nominal
 * local-only capacity (AutoScale policy, D3 runtime variance). The
 * admission queue sheds deterministically, so the queue depth and the
 * accepted-request tail latency stay bounded no matter how hard the
 * overload pushes.
 *
 * Part 2 replays the `blackout` preset (both links down for fault
 * steps [150, 450)) against the remote-heavy Cloud baseline with the
 * per-target circuit breaker on and off. Without the breaker every
 * in-outage request burns the full timeout-retry-fallback budget;
 * with it only the first failure and a bounded trickle of half-open
 * probes pay, so the wasted remote-attempt energy collapses to about
 * one retry cycle per outage.
 *
 * No paper anchor: this extends the paper's batch evaluation with the
 * deployment-shaped serving loop (DESIGN.md §12). Deterministic for a
 * given --seed; doubles as a golden regression surface.
 */

#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "dnn/model_zoo.h"
#include "serve/server.h"
#include "util/logging.h"

using namespace autoscale;

namespace {

/** One serving run with the shared sweep defaults applied. */
serve::ServeStats
runPoint(const sim::InferenceSimulator &sim, serve::ServeConfig config,
         double rateX, double nominalMs)
{
    config.arrival.ratePerSec = rateX * 1000.0 / nominalMs;
    return serve::runServe(sim, config);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printHeader(
        "Serving extension: overload shedding + blackout breaker",
        "Shape: bounded queue/tail under overload; breaker caps wasted "
        "energy to ~one retry cycle per outage");

    const Args args(argc, argv);
    const auto seed = static_cast<std::uint64_t>(args.getInt("--seed", 1));
    const int requests = args.getInt("--requests", 400);
    AS_CHECK(requests > 0);

    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    std::vector<const dnn::Network *> networks;
    for (const dnn::Network &network : dnn::modelZoo()) {
        networks.push_back(&network);
    }
    const double nominal_ms = serve::nominalServiceMs(sim, networks, 50.0);

    // --- Part 1: overload sweep (AutoScale, D3, fault-free). ---
    std::cout << "\nOverload sweep (AutoScale, D3, " << requests
              << " arrivals, capacity unit = "
              << Table::num(1000.0 / nominal_ms, 1) << " req/s):\n";
    Table sweep({"Rate", "Served", "Shed", "Max depth", "p50 (ms)",
                 "p99 (ms)", "QoS viol", "Energy (J)"});
    // Capacity unit = best-local floor; AutoScale's energy-optimal
    // picks run slower than the floor (cheapest target that still
    // meets QoS), so saturation sets in below 1.0x.
    const std::vector<double> rates = {0.25, 0.5, 1.0, 2.0, 4.0};
    std::size_t max_depth_seen = 0;
    for (const double rate : rates) {
        serve::ServeConfig config;
        config.scenario = env::ScenarioId::D3;
        config.totalRequests = requests;
        config.trainRunsPerCombo = 40;
        config.seed = seed;
        const serve::ServeStats stats =
            runPoint(sim, config, rate, nominal_ms);
        const auto arrivals = static_cast<double>(stats.arrivals);
        const std::int64_t shed =
            stats.shedDeadline + stats.shedOverflow + stats.shedStale;
        max_depth_seen = std::max(max_depth_seen, stats.maxQueueDepth);
        sweep.addRow({Table::num(rate, 1) + "x",
                      Table::pct(static_cast<double>(stats.served)
                                 / arrivals),
                      Table::pct(static_cast<double>(shed) / arrivals),
                      std::to_string(stats.maxQueueDepth),
                      Table::num(stats.latencyPercentileMs(50.0), 1),
                      Table::num(stats.latencyPercentileMs(99.0), 1),
                      std::to_string(stats.qosViolations),
                      Table::num(stats.energyJ, 2)});
    }
    sweep.print(std::cout);
    std::cout << "Queue stays bounded (max depth " << max_depth_seen
              << " across the sweep); overload is absorbed by "
                 "deterministic shedding, not latency collapse.\n";

    // --- Part 2: blackout, Cloud baseline, breaker on vs off. ---
    const int blackout_requests = args.getInt("--blackout-requests", 600);
    AS_CHECK(blackout_requests > 0);
    std::cout << "\nBlackout outage (Cloud baseline, S1, "
              << blackout_requests
              << " arrivals at 0.5x capacity, links down for fault "
                 "steps 150-449):\n";
    Table outage({"Breaker", "Served", "Wasted (J)", "Fallbacks",
                  "Short-circuits", "Opens", "Probes", "p99 (ms)"});
    double wasted_on = 0.0;
    double wasted_off = 0.0;
    for (const bool enabled : {true, false}) {
        serve::ServeConfig config;
        config.scenario = env::ScenarioId::S1;
        config.policyName = "cloud";
        config.faults = fault::FaultPlan::fromName("blackout");
        config.totalRequests = blackout_requests;
        config.breakerEnabled = enabled;
        config.seed = seed;
        const serve::ServeStats stats =
            runPoint(sim, config, 0.5, nominal_ms);
        (enabled ? wasted_on : wasted_off) = stats.wastedEnergyJ;
        outage.addRow(
            {enabled ? "on" : "off",
             Table::pct(static_cast<double>(stats.served)
                        / static_cast<double>(stats.arrivals)),
             Table::num(stats.wastedEnergyJ, 2),
             std::to_string(stats.faultFallbacks),
             std::to_string(stats.breakerShortCircuits),
             std::to_string(stats.wlanBreaker.opens
                            + stats.p2pBreaker.opens),
             std::to_string(stats.wlanBreaker.probes
                            + stats.p2pBreaker.probes),
             Table::num(stats.latencyPercentileMs(99.0), 1)});
    }
    outage.print(std::cout);

    const double ratio = wasted_on > 0.0 ? wasted_off / wasted_on : 0.0;
    std::cout << "\nBreaker cuts wasted remote-attempt energy "
              << Table::num(ratio, 1) << "x ("
              << Table::num(wasted_off, 2) << " J -> "
              << Table::num(wasted_on, 2)
              << " J): one full retry cycle plus bounded half-open "
                 "probes per outage instead of one per request.\n";
    return 0;
}
