/**
 * @file
 * Fig. 7 (plus the Section III-C error analysis): the prediction-based
 * approaches — linear regression, SVR, SVM, KNN, and Bayesian
 * optimization — trained on variance-free profiles and evaluated in the
 * presence of stochastic runtime variance.
 *
 * Paper anchors: MAPE without/with variance — LR 13.6%/24.6%,
 * SVR 10.8%/21.1%, BO 9.2%/15.7%; misclassification under variance —
 * SVM 12.7%, KNN 14.3%; and a significant energy-efficiency gap to Opt
 * for every approach.
 */

#include <iostream>
#include <memory>

#include "baselines/classify.h"
#include "baselines/fixed.h"
#include "baselines/oracle.h"
#include "baselines/regression.h"
#include "baselines/bayesopt.h"
#include "common.h"
#include "core/action_space.h"
#include "dnn/model_zoo.h"
#include "util/stats.h"

using namespace autoscale;

namespace {

/** Latency-prediction MAPE of a regression policy over random samples. */
double
regressionMape(const baselines::RegressionPolicy &policy,
               const sim::InferenceSimulator &sim,
               const std::vector<env::ScenarioId> &scenarios, Rng &rng)
{
    const auto actions = core::buildActionSpace(sim);
    std::vector<double> predicted;
    std::vector<double> actual;
    for (const env::ScenarioId id : scenarios) {
        env::Scenario scenario(id);
        for (const auto &net : dnn::modelZoo()) {
            const sim::InferenceRequest request = sim::makeRequest(net);
            for (int i = 0; i < 12; ++i) {
                const env::EnvState env = scenario.next(rng);
                const auto &action =
                    actions[rng.uniformInt(actions.size())];
                const sim::Outcome truth = sim.expected(net, action, env);
                if (!truth.feasible) {
                    continue;
                }
                predicted.push_back(
                    policy.predictLatencyMs(request, env, action));
                actual.push_back(truth.latencyMs);
            }
        }
    }
    return mape(predicted, actual);
}

/** Energy-prediction MAPE of the BO surrogates. */
double
bayesOptMape(const baselines::BayesOptPolicy &policy,
             const sim::InferenceSimulator &sim,
             const std::vector<env::ScenarioId> &scenarios, Rng &rng)
{
    const auto actions = core::buildActionSpace(sim);
    std::vector<double> predicted;
    std::vector<double> actual;
    for (const env::ScenarioId id : scenarios) {
        env::Scenario scenario(id);
        for (const auto &net : dnn::modelZoo()) {
            for (int i = 0; i < 12; ++i) {
                const env::EnvState env = scenario.next(rng);
                const auto &action =
                    actions[rng.uniformInt(actions.size())];
                const sim::Outcome truth = sim.expected(net, action, env);
                if (!truth.feasible) {
                    continue;
                }
                predicted.push_back(policy.predictEnergyJ(net, action));
                actual.push_back(truth.energyJ);
            }
        }
    }
    return mape(predicted, actual);
}

/** Misclassification ratio of a classifier vs Opt under variance. */
double
misclassification(const baselines::ClassificationPolicy &policy,
                  const sim::InferenceSimulator &sim,
                  const std::vector<env::ScenarioId> &scenarios, Rng &rng)
{
    baselines::OptOracle oracle(sim);
    const auto &actions = oracle.actions();
    int total = 0;
    int wrong = 0;
    for (const env::ScenarioId id : scenarios) {
        env::Scenario scenario(id);
        for (const auto &net : dnn::modelZoo()) {
            const sim::InferenceRequest request = sim::makeRequest(net);
            for (int i = 0; i < 10; ++i) {
                const env::EnvState env = scenario.next(rng);
                const int predicted = policy.predictAction(request, env);
                const sim::ExecutionTarget opt =
                    oracle.optimalTarget(request, env);
                ++total;
                if (!(actions[static_cast<std::size_t>(predicted)]
                          .category()
                      == opt.category())) {
                    ++wrong;
                }
            }
        }
    }
    return static_cast<double>(wrong) / static_cast<double>(total);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Fig. 7 / Section III-C: inefficiency of prediction-based "
        "approaches",
        "Shape: every predictor's error grows under variance, leaving a "
        "significant PPW gap to Opt");

    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    Rng rng(2024);

    // Train the regression/classification approaches on profiles that
    // cover the whole static design space (the paper's prediction
    // models are fitted over the profiled space; their failure under
    // variance is a capacity problem, not pure extrapolation). BO keeps
    // its per-network clean-environment estimation functions.
    const baselines::TrainingSet corpus = baselines::generateTrainingSet(
        sim, harness::allZooNetworks(),
        {env::ScenarioId::S1, env::ScenarioId::S2, env::ScenarioId::S3,
         env::ScenarioId::S4, env::ScenarioId::S5},
        25, rng);

    auto lr = baselines::makeLinearRegressionPolicy(sim);
    lr->train(corpus);
    auto svr = baselines::makeSvrPolicy(sim);
    svr->train(corpus);
    auto svm = baselines::makeSvmPolicy(sim);
    svm->train(corpus);
    auto knn = baselines::makeKnnPolicy(sim);
    knn->train(corpus);
    auto bo = baselines::makeBayesOptPolicy(sim);
    bo->train(harness::allZooNetworks(), rng);

    const std::vector<env::ScenarioId> no_variance{env::ScenarioId::S1};
    // "With variance": the non-clean static states plus the dynamic
    // co-runner/signal scenarios the predictors never profiled.
    const std::vector<env::ScenarioId> variance{
        env::ScenarioId::S2, env::ScenarioId::S3, env::ScenarioId::S4,
        env::ScenarioId::S5, env::ScenarioId::D2, env::ScenarioId::D3};

    printBanner(std::cout, "Prediction error");
    Table errors({"Approach", "MAPE no variance", "MAPE with variance"});
    errors.addRow({"LR",
                   bench::withPaper(
                       Table::num(regressionMape(*lr, sim, no_variance,
                                                 rng), 1) + "%",
                       "13.6%"),
                   bench::withPaper(
                       Table::num(regressionMape(*lr, sim, variance, rng),
                                  1) + "%",
                       "24.6%")});
    errors.addRow({"SVR",
                   bench::withPaper(
                       Table::num(regressionMape(*svr, sim, no_variance,
                                                 rng), 1) + "%",
                       "10.8%"),
                   bench::withPaper(
                       Table::num(regressionMape(*svr, sim, variance,
                                                 rng), 1) + "%",
                       "21.1%")});
    errors.addRow({"BO",
                   bench::withPaper(
                       Table::num(bayesOptMape(*bo, sim, no_variance,
                                               rng), 1) + "%",
                       "9.2%"),
                   bench::withPaper(
                       Table::num(bayesOptMape(*bo, sim, variance, rng),
                                  1) + "%",
                       "15.7%")});
    errors.print(std::cout);

    Table misclass({"Approach", "Misclassification with variance"});
    misclass.addRow({"SVM",
                     bench::withPaper(
                         Table::pct(misclassification(*svm, sim, variance,
                                                      rng)),
                         "12.7%")});
    misclass.addRow({"KNN",
                     bench::withPaper(
                         Table::pct(misclassification(*knn, sim, variance,
                                                      rng)),
                         "14.3%")});
    misclass.print(std::cout);

    // Scheduling quality across static and dynamic environments.
    printBanner(std::cout,
                "Energy efficiency and QoS violations (S1-S5, D2, D3)");
    const std::vector<env::ScenarioId> all_static{
        env::ScenarioId::S1, env::ScenarioId::S2, env::ScenarioId::S3,
        env::ScenarioId::S4, env::ScenarioId::S5, env::ScenarioId::D2,
        env::ScenarioId::D3};
    harness::EvalOptions options;
    options.runsPerCombo = bench::kEvalRunsPerCombo;
    options.seed = 555;

    auto cpu_policy = baselines::makeEdgeCpuFp32Policy(sim);
    const harness::RunStats cpu_stats = harness::evaluatePolicy(
        *cpu_policy, sim, harness::allZooNetworks(), all_static, options);

    Table quality({"Approach", "PPW vs Edge(CPU)", "QoS violations",
                   "Opt-match"});
    auto report = [&](baselines::SchedulingPolicy &policy) {
        const harness::RunStats stats = harness::evaluatePolicy(
            policy, sim, harness::allZooNetworks(), all_static, options);
        quality.addRow({policy.name(),
                        Table::times(stats.ppw() / cpu_stats.ppw(), 2),
                        Table::pct(stats.qosViolationRatio()),
                        Table::pct(stats.predictionAccuracy())});
        return stats;
    };
    report(*cpu_policy);
    report(*lr);
    report(*svr);
    report(*svm);
    report(*knn);
    report(*bo);
    baselines::OptOracle oracle(sim);
    const harness::RunStats opt_stats = report(oracle);
    quality.print(std::cout);

    std::cout << "\nOpt PPW advantage over the best predictor shows the"
                 " \"significant room\nfor energy efficiency"
                 " improvement\" the paper motivates AutoScale with.\n"
              << "Opt PPW vs Edge(CPU): "
              << Table::times(opt_stats.ppw() / cpu_stats.ppw(), 2)
              << '\n';
    return 0;
}
