/**
 * @file
 * Serve-loop throughput benchmark (DESIGN.md §14): requests/sec of the
 * online serving loop with metering live, in three modes —
 *
 *  (a) batched  — the BatchDecisionEngine SoA gather/commit path
 *      (--batch 64, the serving default);
 *  (b) scalar   — the one-request-at-a-time reference loop
 *      (--batch 0), kept as the parity baseline; and
 *  (c) direct   — the batched path with the precomputed cost tables
 *      bypassed (the first-principles layer walk under it).
 *
 * All three modes run the identical seeded workload, so the run's
 * aggregate statistics and the post-run RNG fingerprint must be
 * bit-equal across modes — a free end-to-end parity assertion on top
 * of the speedup numbers. Results land in BENCH_serve_throughput.json;
 * `--check` turns the batched >= 2x scalar floor and the cross-mode
 * checksum equality into a nonzero exit (the CI perf-regression gate).
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "common.h"
#include "dnn/model_zoo.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "serve/server.h"
#include "util/logging.h"

using namespace autoscale;

namespace {

/** One serving run's measurement in one mode. */
struct Measurement {
    std::int64_t requests = 0;
    double seconds = 0.0;
    double checksum = 0.0;
    std::uint64_t rngFingerprint = 0;

    double
    requestsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(requests) / seconds
                             : 0.0;
    }
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

serve::ServeConfig
benchConfig(std::int64_t requests, std::uint64_t seed)
{
    serve::ServeConfig config;
    config.scenario = env::ScenarioId::D3;
    config.faults = fault::FaultPlan::fromName("flaky-wifi");
    config.faults.seed = seed + 17;
    config.totalRequests = requests;
    config.seed = seed;
    // Throughput of the serving loop itself: skip pre-training (it is
    // the same work in every mode and would dominate the timing).
    config.trainRunsPerCombo = 0;
    return config;
}

/**
 * One timed serving run. Metering is live (the production
 * configuration this path is optimized for); tracing is off.
 */
Measurement
runMode(int batchSize, bool useCostCache, std::int64_t requests,
        std::uint64_t seed, const scenario::ScenarioSpec *spec)
{
    sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    sim.setUseCostCache(useCostCache);
    serve::ServeConfig config;
    if (spec != nullptr) {
        // --scenario FILE: the file supplies the workload shape (env
        // base, faults, arrival schedule, QoS depths); --requests and
        // --seed stay authoritative for measurement length and
        // seeding, and pre-training is skipped as in synthetic mode.
        bench::applyScenarioToServe(*spec, sim, &config);
        config.totalRequests = requests;
        config.seed = seed;
        config.trainRunsPerCombo = 0;
    } else {
        config = benchConfig(requests, seed);
        // Nominal capacity depends on the device only, so every mode
        // sees the same arrival process.
        const double rateX = 2.0;
        std::vector<const dnn::Network *> networks;
        for (const dnn::Network &network : dnn::modelZoo()) {
            networks.push_back(&network);
        }
        config.arrival.ratePerSec = rateX * 1000.0
            / serve::nominalServiceMs(sim, networks,
                                      config.accuracyTargetPct);
    }
    config.batchSize = batchSize;

    obs::MetricsRegistry metrics;
    obs::ObsContext obs;
    obs.metrics = &metrics;

    Measurement m;
    const double start = now();
    const serve::ServeStats stats = serve::runServe(sim, config, obs);
    m.seconds = now() - start;
    m.requests = stats.arrivals;
    m.checksum = stats.energyJ + stats.wastedEnergyJ + stats.totalWaitMs
        + stats.totalServiceMs + static_cast<double>(stats.served)
        + static_cast<double>(stats.shedDeadline)
        + static_cast<double>(stats.shedOverflow)
        + static_cast<double>(stats.shedStale);
    m.rngFingerprint = stats.rngFingerprint;
    return m;
}

void
printMeasurement(const char *mode, const Measurement &m)
{
    std::cout << mode << ": " << Table::num(m.requestsPerSec(), 0)
              << " req/s (" << m.requests << " arrivals in "
              << Table::num(m.seconds, 3) << " s, checksum "
              << Table::num(m.checksum, 3) << ")\n";
}

std::string
measurementJson(const Measurement &m)
{
    return std::string("{\"requests\":") + std::to_string(m.requests)
        + ",\"seconds\":" + obs::jsonNumber(m.seconds)
        + ",\"requests_per_sec\":" + obs::jsonNumber(m.requestsPerSec())
        + ",\"checksum\":" + obs::jsonNumber(m.checksum)
        + ",\"rng_fingerprint\":\"" + std::to_string(m.rngFingerprint)
        + "\"}";
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.getInt("--seed", 1));
    const std::int64_t requests = args.getInt("--requests", 200000);
    const int batchSize = args.getInt("--batch", 64);
    const std::string out =
        args.get("--out", "BENCH_serve_throughput.json");
    const bool check = args.has("--check");

    const std::string scenarioPath = args.get("--scenario");
    scenario::ScenarioSpec scenarioSpec;
    const scenario::ScenarioSpec *spec = nullptr;
    if (!scenarioPath.empty()) {
        scenarioSpec = bench::loadBenchScenario(scenarioPath);
        if (scenarioSpec.population > 1) {
            fatal("scenario '" + scenarioPath
                  + "' declares a fleet (device.population > 1); use "
                    "bench_fleet for fleet scenarios");
        }
        spec = &scenarioSpec;
    }

    bench::printHeader(
        spec != nullptr
            ? "Serve-loop throughput: scenario '" + spec->name
                  + "', batched vs scalar vs direct"
            : "Serve-loop throughput: batched SoA vs scalar vs direct",
        "Gate: batched >= 2x scalar req/s; all modes bit-equal");

    // Warm-up run per mode (pages in code and cost tables), then the
    // measured run.
    runMode(batchSize, true, requests / 10, seed, spec);
    const Measurement batched =
        runMode(batchSize, true, requests, seed, spec);
    printMeasurement("batched", batched);

    runMode(0, true, requests / 10, seed, spec);
    const Measurement scalar = runMode(0, true, requests, seed, spec);
    printMeasurement("scalar", scalar);

    runMode(batchSize, false, requests / 10, seed, spec);
    const Measurement direct =
        runMode(batchSize, false, requests, seed, spec);
    printMeasurement("direct", direct);

    const double speedupVsScalar =
        batched.requestsPerSec() / scalar.requestsPerSec();
    const double speedupVsDirect =
        batched.requestsPerSec() / direct.requestsPerSec();
    const bool checksumsAgree = batched.checksum == scalar.checksum
        && batched.checksum == direct.checksum
        && batched.rngFingerprint == scalar.rngFingerprint
        && batched.rngFingerprint == direct.rngFingerprint;
    std::cout << "\nspeedup: vs scalar " << Table::num(speedupVsScalar, 2)
              << "x, vs direct " << Table::num(speedupVsDirect, 2)
              << "x; checksums "
              << (checksumsAgree ? "agree" : "DISAGREE") << "\n";

    std::ofstream json(out);
    json << "{\"seed\":" << seed << ",\"requests\":" << requests
         << ",\"batch\":" << batchSize
         << ",\"batched\":" << measurementJson(batched)
         << ",\"scalar\":" << measurementJson(scalar)
         << ",\"direct\":" << measurementJson(direct)
         << ",\"speedup\":{\"vs_scalar\":"
         << obs::jsonNumber(speedupVsScalar)
         << ",\"vs_direct\":" << obs::jsonNumber(speedupVsDirect) << "}"
         << ",\"checksums_agree\":"
         << (checksumsAgree ? "true" : "false")
         << ",\"gates\":{\"batched_min_2x_scalar\":"
         << (speedupVsScalar >= 2.0 ? "true" : "false") << "}}\n";
    std::cout << "Wrote " << out << "\n";

    if (check) {
        if (!checksumsAgree) {
            std::cerr << "FAIL: cross-mode checksums disagree (parity "
                         "violation)\n";
            return 1;
        }
        if (speedupVsScalar < 2.0) {
            std::cerr << "FAIL: batched path is only "
                      << Table::num(speedupVsScalar, 2)
                      << "x scalar (floor: 2x)\n";
            return 1;
        }
        std::cout << "PASS: gates met\n";
    }
    return 0;
}
