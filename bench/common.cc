#include "common.h"

#include <algorithm>
#include <iostream>

#include "util/logging.h"

namespace autoscale::bench {

sim::ExecutionTarget
topTarget(const sim::InferenceSimulator &sim, sim::TargetPlace place,
          platform::ProcKind proc, dnn::Precision precision)
{
    const platform::Processor *p = sim.deviceAt(place).processor(proc);
    AS_CHECK(p != nullptr);
    return sim::ExecutionTarget{place, proc, p->maxVfIndex(), precision};
}

sim::ExecutionTarget
edgeCpuFp32(const sim::InferenceSimulator &sim)
{
    return topTarget(sim, sim::TargetPlace::Local,
                     platform::ProcKind::MobileCpu, dnn::Precision::FP32);
}

std::unique_ptr<harness::AutoScalePolicy>
trainOnAll(const sim::InferenceSimulator &sim,
           const std::vector<env::ScenarioId> &scenarios,
           std::uint64_t seed, bool streaming, double accuracyTargetPct)
{
    auto policy = harness::makeAutoScalePolicy(sim, seed);
    Rng rng(seed ^ 0x7ea1ULL);
    harness::trainAutoScale(*policy, sim, harness::allZooNetworks(),
                            scenarios, kTrainRunsPerCombo, rng, streaming,
                            accuracyTargetPct);
    policy->scheduler().setExploration(false);
    return policy;
}

RunConfig
runConfigFromArgs(const Args &args)
{
    RunConfig config;
    config.seeds = std::max(1, args.getInt("--seeds", 1));
    config.jobs =
        std::max(1, args.getInt("--jobs", harness::defaultJobs()));
    config.obs = obs::ObsConfig::fromArgs(args);
    std::cout << "Replicates: " << config.seeds << " seed(s), "
              << config.jobs << " worker(s)\n";
    return config;
}

harness::RunStats
runSeeds(std::uint64_t baseSeed, int replicates, int jobs,
         const std::function<harness::RunStats(std::uint64_t seed)> &fn)
{
    return harness::runReplicates(
        replicates, baseSeed, jobs, [&](int index, Rng &) {
            const std::uint64_t seed = index == 0
                ? baseSeed
                : harness::replicateSeed(
                      baseSeed, static_cast<std::uint64_t>(index));
            return fn(seed);
        });
}

harness::RunStats
runSeeds(std::uint64_t baseSeed, int replicates, int jobs,
         const obs::ObsContext &obs,
         const std::function<harness::RunStats(
             std::uint64_t seed, const obs::ObsContext &obs)> &fn)
{
    struct ReplicateResult {
        harness::RunStats stats;
        obs::TraceRecorder trace;
        obs::MetricsRegistry metrics;
    };
    const std::vector<ReplicateResult> results = harness::parallelIndexed(
        static_cast<std::size_t>(std::max(1, replicates)), jobs,
        [&](std::size_t index) {
            const std::uint64_t seed = index == 0
                ? baseSeed
                : harness::replicateSeed(
                      baseSeed, static_cast<std::uint64_t>(index));
            ReplicateResult result;
            obs::ObsContext local;
            if (obs.tracing()) {
                local.trace = &result.trace;
            }
            if (obs.metering()) {
                local.metrics = &result.metrics;
            }
            result.stats = fn(seed, local);
            return result;
        });

    harness::RunStats merged;
    for (const ReplicateResult &result : results) {
        merged.merge(result.stats);
        if (obs.tracing()) {
            obs.trace->append(result.trace);
        }
        if (obs.metering()) {
            obs.metrics->merge(result.metrics);
        }
    }
    return merged;
}

std::string
withPaper(const std::string &measured, const std::string &paper)
{
    return measured + " (paper: " + paper + ")";
}

void
printHeader(const std::string &figure, const std::string &claim)
{
    std::cout << "==================================================\n"
              << "AutoScale reproduction | " << figure << '\n'
              << claim << '\n'
              << "==================================================\n";
}

} // namespace autoscale::bench
