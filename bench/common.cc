#include "common.h"

#include <iostream>

#include "util/logging.h"

namespace autoscale::bench {

sim::ExecutionTarget
topTarget(const sim::InferenceSimulator &sim, sim::TargetPlace place,
          platform::ProcKind proc, dnn::Precision precision)
{
    const platform::Processor *p = sim.deviceAt(place).processor(proc);
    AS_CHECK(p != nullptr);
    return sim::ExecutionTarget{place, proc, p->maxVfIndex(), precision};
}

sim::ExecutionTarget
edgeCpuFp32(const sim::InferenceSimulator &sim)
{
    return topTarget(sim, sim::TargetPlace::Local,
                     platform::ProcKind::MobileCpu, dnn::Precision::FP32);
}

std::unique_ptr<harness::AutoScalePolicy>
trainOnAll(const sim::InferenceSimulator &sim,
           const std::vector<env::ScenarioId> &scenarios,
           std::uint64_t seed, bool streaming, double accuracyTargetPct)
{
    auto policy = harness::makeAutoScalePolicy(sim, seed);
    Rng rng(seed ^ 0x7ea1ULL);
    harness::trainAutoScale(*policy, sim, harness::allZooNetworks(),
                            scenarios, kTrainRunsPerCombo, rng, streaming,
                            accuracyTargetPct);
    policy->scheduler().setExploration(false);
    return policy;
}

std::string
withPaper(const std::string &measured, const std::string &paper)
{
    return measured + " (paper: " + paper + ")";
}

void
printHeader(const std::string &figure, const std::string &claim)
{
    std::cout << "==================================================\n"
              << "AutoScale reproduction | " << figure << '\n'
              << claim << '\n'
              << "==================================================\n";
}

} // namespace autoscale::bench
