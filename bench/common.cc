#include "common.h"

#include <algorithm>
#include <iostream>

#include "dnn/model_zoo.h"
#include "util/logging.h"

namespace autoscale::bench {

sim::ExecutionTarget
topTarget(const sim::InferenceSimulator &sim, sim::TargetPlace place,
          platform::ProcKind proc, dnn::Precision precision)
{
    const platform::Processor *p = sim.deviceAt(place).processor(proc);
    AS_CHECK(p != nullptr);
    return sim::ExecutionTarget{place, proc, p->maxVfIndex(), precision};
}

sim::ExecutionTarget
edgeCpuFp32(const sim::InferenceSimulator &sim)
{
    return topTarget(sim, sim::TargetPlace::Local,
                     platform::ProcKind::MobileCpu, dnn::Precision::FP32);
}

std::unique_ptr<harness::AutoScalePolicy>
trainOnAll(const sim::InferenceSimulator &sim,
           const std::vector<env::ScenarioId> &scenarios,
           std::uint64_t seed, bool streaming, double accuracyTargetPct)
{
    auto policy = harness::makeAutoScalePolicy(sim, seed);
    Rng rng(seed ^ 0x7ea1ULL);
    harness::trainAutoScale(*policy, sim, harness::allZooNetworks(),
                            scenarios, kTrainRunsPerCombo, rng, streaming,
                            accuracyTargetPct);
    policy->scheduler().setExploration(false);
    return policy;
}

RunConfig
runConfigFromArgs(const Args &args)
{
    RunConfig config;
    config.seeds = std::max(1, args.getInt("--seeds", 1));
    config.jobs =
        std::max(1, args.getInt("--jobs", harness::defaultJobs()));
    config.obs = obs::ObsConfig::fromArgs(args);
    std::cout << "Replicates: " << config.seeds << " seed(s), "
              << config.jobs << " worker(s)\n";
    return config;
}

harness::RunStats
runSeeds(std::uint64_t baseSeed, int replicates, int jobs,
         const std::function<harness::RunStats(std::uint64_t seed)> &fn)
{
    return harness::runReplicates(
        replicates, baseSeed, jobs, [&](int index, Rng &) {
            const std::uint64_t seed = index == 0
                ? baseSeed
                : harness::replicateSeed(
                      baseSeed, static_cast<std::uint64_t>(index));
            return fn(seed);
        });
}

harness::RunStats
runSeeds(std::uint64_t baseSeed, int replicates, int jobs,
         const obs::ObsContext &obs,
         const std::function<harness::RunStats(
             std::uint64_t seed, const obs::ObsContext &obs)> &fn)
{
    struct ReplicateResult {
        harness::RunStats stats;
        obs::TraceRecorder trace;
        obs::MetricsRegistry metrics;
    };
    const std::vector<ReplicateResult> results = harness::parallelIndexed(
        static_cast<std::size_t>(std::max(1, replicates)), jobs,
        [&](std::size_t index) {
            const std::uint64_t seed = index == 0
                ? baseSeed
                : harness::replicateSeed(
                      baseSeed, static_cast<std::uint64_t>(index));
            ReplicateResult result;
            obs::ObsContext local;
            if (obs.tracing()) {
                local.trace = &result.trace;
            }
            if (obs.metering()) {
                local.metrics = &result.metrics;
            }
            result.stats = fn(seed, local);
            return result;
        });

    harness::RunStats merged;
    for (const ReplicateResult &result : results) {
        merged.merge(result.stats);
        if (obs.tracing()) {
            obs.trace->append(result.trace);
        }
        if (obs.metering()) {
            obs.metrics->merge(result.metrics);
        }
    }
    return merged;
}

scenario::ScenarioSpec
loadBenchScenario(const std::string &path)
{
    scenario::Diagnostics diags;
    const std::vector<scenario::LoadedScenario> loaded =
        scenario::loadScenarioFile(path, diags);
    if (!diags.ok()) {
        fatal("invalid scenario '" + path + "':\n" + diags.render());
    }
    if (loaded.size() != 1) {
        fatal("scenario '" + path + "' expands to "
              + std::to_string(loaded.size())
              + " variants; benchmarks take exactly one (sweep "
                "[variant] axes externally)");
    }
    return loaded.front().spec;
}

void
applyScenarioToServe(const scenario::ScenarioSpec &spec,
                     const sim::InferenceSimulator &sim,
                     serve::ServeConfig *config)
{
    if (spec.envBases.size() != 1) {
        fatal("scenario '" + spec.name
              + "' lists " + std::to_string(spec.envBases.size())
              + " env.base entries; serving replays exactly one");
    }
    config->scenario = spec.envBases.front();
    config->totalRequests = spec.requests;
    config->seed = spec.seed;
    config->networkFilter = spec.network;
    config->accuracyTargetPct = spec.accuracyTargetPct;
    if (spec.trainRuns >= 0) {
        config->trainRunsPerCombo = spec.trainRuns;
    }
    config->faults = spec.faults;
    config->retry = spec.retry;
    config->admission.maxDepth = spec.queueDepth;
    config->admission.degradeDepth = spec.degradeDepth;

    std::vector<const dnn::Network *> networks;
    for (const dnn::Network &network : dnn::modelZoo()) {
        if (config->networkFilter.empty()
            || network.name() == config->networkFilter) {
            networks.push_back(&network);
        }
    }
    if (networks.empty()) {
        fatal("scenario '" + spec.name + "': unknown network '"
              + config->networkFilter + "'");
    }
    config->arrival.ratePerSec = spec.arrival.rateRps > 0.0
        ? spec.arrival.rateRps
        : spec.arrival.rateX * 1000.0
            / serve::nominalServiceMs(sim, networks,
                                      config->accuracyTargetPct);
    config->arrival.burstPeriodMs = spec.arrival.burstPeriodMs;
    config->arrival.burstDurationMs = spec.arrival.burstMs;
    config->arrival.burstMultiplier = spec.arrival.burstMult;
    config->arrival.diurnalPeriodMs = spec.arrival.diurnalPeriodMs;
    config->arrival.diurnalAmplitude = spec.arrival.diurnalAmplitude;
}

serve::FleetConfig
fleetConfigFromScenario(const scenario::ScenarioSpec &spec,
                        const sim::InferenceSimulator &sim)
{
    serve::FleetConfig fleet;
    applyScenarioToServe(spec, sim, &fleet.serve);
    fleet.devices = spec.population;
    fleet.epochMs = spec.fleet.epochMs;
    fleet.qMode = serve::qTableModeFromName(spec.fleet.qMode);
    fleet.federatedMergeEpochs = spec.fleet.mergeEpochs;
    fleet.infra = spec.infra;
    fleet.churn = spec.churn;
    return fleet;
}

std::string
withPaper(const std::string &measured, const std::string &paper)
{
    return measured + " (paper: " + paper + ")";
}

void
printHeader(const std::string &figure, const std::string &claim)
{
    std::cout << "==================================================\n"
              << "AutoScale reproduction | " << figure << '\n'
              << claim << '\n'
              << "==================================================\n";
}

} // namespace autoscale::bench
