/**
 * @file
 * Fig. 13: the execution-scaling decision distribution of AutoScale
 * versus Opt on each phone, plus the prediction-accuracy analysis and
 * the per-environment decision anchors of Section VI-B (weak signal S4:
 * on-device 69.1% / connected 30.7% / cloud 0.2%; web browser D2:
 * cloud 46.1% / connected 35.3% / on-device 18.6%).
 */

#include <iostream>
#include <set>

#include "common.h"
#include "dnn/model_zoo.h"

using namespace autoscale;

namespace {

void
printDistribution(const std::string &title,
                  const harness::RunStats &stats)
{
    printBanner(std::cout, title);
    // Bind the report-time maps once: the accessors build them by value.
    const std::map<std::string, int> as_counts = stats.decisionCounts();
    const std::map<std::string, int> opt_counts =
        stats.optDecisionCounts();
    std::set<std::string> categories;
    for (const auto &[category, count] : as_counts) {
        categories.insert(category);
    }
    for (const auto &[category, count] : opt_counts) {
        categories.insert(category);
    }
    Table table({"Category", "AutoScale share", "Opt share"});
    for (const std::string &category : categories) {
        const auto as_it = as_counts.find(category);
        const auto opt_it = opt_counts.find(category);
        const double as_share = as_it == as_counts.end()
            ? 0.0
            : static_cast<double>(as_it->second) / stats.count();
        const double opt_share = opt_it == opt_counts.end()
            ? 0.0
            : static_cast<double>(opt_it->second) / stats.count();
        table.addRow({category, Table::pct(as_share),
                      Table::pct(opt_share)});
    }
    table.print(std::cout);
    std::cout << "Prediction accuracy (category-level match with Opt): "
              << Table::pct(stats.predictionAccuracy())
              << "; within 1% of Opt energy: "
              << Table::pct(stats.nearOptimalRatio()) << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printHeader(
        "Fig. 13: decision distributions and prediction accuracy",
        "Paper: 97.9% average prediction accuracy; mis-predictions only "
        "where the energy gap is < 1%");

    const Args args(argc, argv);
    obs::ObsOutput obs_out(obs::ObsConfig::fromArgs(args));

    const std::vector<env::ScenarioId> scenarios = env::staticScenarios();
    harness::EvalOptions options;
    options.runsPerCombo = bench::kEvalRunsPerCombo;
    options.seed = 1301;
    options.obs = obs_out.context(); // fully serial: record directly

    std::vector<double> accuracies;
    for (const std::string &phone : platform::phoneNames()) {
        sim::InferenceSimulator sim =
            sim::InferenceSimulator::makeDefault(platform::makePhone(phone));
        if (obs_out.config().metering()) {
            sim.setObserver(&obs_out.metrics());
        }
        auto policy = bench::trainOnAll(sim, scenarios, 1302);
        const harness::RunStats stats = harness::evaluatePolicy(
            *policy, sim, harness::allZooNetworks(), scenarios, options);
        printDistribution(phone + " (static environments)", stats);
        accuracies.push_back(stats.predictionAccuracy());
    }

    // The Section VI-B per-environment anchors, on the Mi8Pro.
    sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    if (obs_out.config().metering()) {
        sim.setObserver(&obs_out.metrics());
    }
    auto policy = bench::trainOnAll(sim, env::allScenarios(), 1303);

    options.seed = 1304;
    const harness::RunStats s4 = harness::evaluatePolicy(
        *policy, sim, harness::allZooNetworks(), {env::ScenarioId::S4},
        options);
    printDistribution(
        "Mi8Pro, S4 weak Wi-Fi (paper: on-device 69.1%, connected 30.7%,"
        " cloud 0.2%)",
        s4);

    const harness::RunStats d2 = harness::evaluatePolicy(
        *policy, sim, harness::allZooNetworks(), {env::ScenarioId::D2},
        options);
    printDistribution(
        "Mi8Pro, D2 web browser (paper: cloud 46.1%, connected 35.3%,"
        " on-device 18.6%)",
        d2);

    double sum = 0.0;
    for (double a : accuracies) {
        sum += a;
    }
    std::cout << "\nAverage prediction accuracy across devices: "
              << bench::withPaper(
                     Table::pct(sum / accuracies.size()), "97.9%")
              << '\n';
    obs_out.finalize(&std::cout);
    return 0;
}
