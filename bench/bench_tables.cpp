/**
 * @file
 * Tables I-IV of the paper, regenerated from the implementation: the
 * state features and their bins, the device fleet, the workload zoo,
 * and the execution environments. Serves as the configuration audit for
 * every other experiment.
 */

#include <iostream>

#include "common.h"
#include "core/action_space.h"
#include "core/state.h"
#include "dnn/accuracy.h"
#include "dnn/model_zoo.h"

using namespace autoscale;

namespace {

void
tableI()
{
    printBanner(std::cout, "Table I: state-related features");
    Table table({"State", "Bins", "Bin boundaries"});
    table.addRow({"S_CONV", "4", "<30 / <50 / <90 / >=90 layers"});
    table.addRow({"S_FC", "2", "<10 / >=10 layers"});
    table.addRow({"S_RC", "2", "<10 / >=10 layers"});
    table.addRow({"S_MAC", "3", "<1000M / <2000M / >=2000M MACs"});
    table.addRow({"S_Co_CPU", "4", "0 / <25% / <75% / <=100%"});
    table.addRow({"S_Co_MEM", "4", "0 / <25% / <75% / <=100%"});
    table.addRow({"S_RSSI_W", "2", "> -80 dBm / <= -80 dBm"});
    table.addRow({"S_RSSI_P", "2", "> -80 dBm / <= -80 dBm"});
    table.print(std::cout);
    core::StateEncoder encoder;
    std::cout << "Total states: " << encoder.numStates()
              << " (paper: 3,072)\n";
}

void
tableII()
{
    printBanner(std::cout, "Table II: mobile device specification");
    Table table({"Device", "CPU", "CPU V/F", "CPU W", "GPU", "GPU V/F",
                 "GPU W", "DSP", "Actions"});
    for (const std::string &name : platform::phoneNames()) {
        const sim::InferenceSimulator sim =
            sim::InferenceSimulator::makeDefault(platform::makePhone(name));
        const platform::Device &device = sim.localDevice();
        const auto actions = core::buildActionSpace(sim);
        table.addRow({
            device.name(),
            device.cpu().name() + " @"
                + Table::num(device.cpu().freqGhz(device.cpu().maxVfIndex()),
                             2)
                + "GHz",
            std::to_string(device.cpu().numVfSteps()),
            Table::num(device.cpu().busyPowerW(device.cpu().maxVfIndex()),
                       1),
            device.gpu().name(),
            std::to_string(device.gpu().numVfSteps()),
            Table::num(device.gpu().busyPowerW(device.gpu().maxVfIndex()),
                       1),
            device.hasDsp()
                ? device.dsp().name() + " ("
                    + Table::num(device.dsp().busyPowerW(0), 1) + " W)"
                : "-",
            std::to_string(actions.size()),
        });
    }
    table.print(std::cout);
    std::cout << "Mi8Pro action count 66 matches the paper's \"~66"
              << " actions\" (footnote 8).\n";
}

void
tableIII()
{
    printBanner(std::cout, "Table III: DNN inference workloads");
    Table table({"Workload", "DNN", "S_CONV", "S_FC", "S_RC", "MACs (M)",
                 "FP32 acc", "INT8 acc"});
    for (const auto &net : dnn::modelZoo()) {
        table.addRow({
            dnn::taskName(net.task()),
            net.name(),
            std::to_string(net.numConv()),
            std::to_string(net.numFc()),
            std::to_string(net.numRc()),
            Table::num(net.totalMacsMillions(), 0),
            Table::num(dnn::inferenceAccuracy(net.name(),
                                              dnn::Precision::FP32),
                       1),
            Table::num(dnn::inferenceAccuracy(net.name(),
                                              dnn::Precision::INT8),
                       1),
        });
    }
    table.print(std::cout);
}

void
tableIV()
{
    printBanner(std::cout, "Table IV: DNN inference execution environments");
    Table table({"Environment", "Type", "Description"});
    for (const env::ScenarioId id : env::allScenarios()) {
        table.addRow({env::scenarioName(id),
                      env::isDynamicScenario(id) ? "Dynamic" : "Static",
                      env::scenarioDescription(id)});
    }
    table.print(std::cout);
}

} // namespace

int
main()
{
    bench::printHeader("Tables I-IV",
                       "Configuration audit: states, devices, workloads, "
                       "environments");
    tableI();
    tableII();
    tableIII();
    tableIV();
    return 0;
}
