/**
 * @file
 * Fig. 12: adaptability to inference quality targets — AutoScale's
 * energy efficiency and QoS-violation ratio as the accuracy requirement
 * sweeps over {none, 50%, 65%, 70%}.
 *
 * Paper shape to reproduce: higher accuracy targets forbid the
 * low-precision local targets, slightly degrading energy efficiency and
 * QoS; relaxing below 50% changes little because the most efficient
 * targets usually exceed 50% accuracy anyway.
 */

#include <iostream>

#include "baselines/fixed.h"
#include "baselines/oracle.h"
#include "common.h"
#include "dnn/model_zoo.h"

using namespace autoscale;

int
main(int argc, char **argv)
{
    bench::printHeader(
        "Fig. 12: sensitivity to the inference accuracy target",
        "Shape: PPW and QoS degrade slightly at 65-70% targets; flat at "
        "and below 50%");

    const Args args(argc, argv);
    obs::ObsOutput obs_out(obs::ObsConfig::fromArgs(args));

    sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    if (obs_out.config().metering()) {
        sim.setObserver(&obs_out.metrics());
    }
    const std::vector<env::ScenarioId> scenarios = env::staticScenarios();

    Table table({"Accuracy target", "AutoScale PPW vs Edge(CPU)",
                 "AutoScale QoS violations", "Opt PPW vs Edge(CPU)",
                 "Accuracy violations"});

    for (double target : {0.0, 50.0, 65.0, 70.0}) {
        auto policy = bench::trainOnAll(sim, scenarios, 1201
                                            + static_cast<int>(target),
                                        /*streaming=*/false, target);

        harness::EvalOptions options;
        options.runsPerCombo = bench::kEvalRunsPerCombo;
        options.seed = 1212 + static_cast<std::uint64_t>(target);
        options.accuracyTargetPct = target;
        options.obs = obs_out.context(); // fully serial: record directly

        const harness::RunStats as_stats = harness::evaluatePolicy(
            *policy, sim, harness::allZooNetworks(), scenarios, options);

        auto cpu_policy = baselines::makeEdgeCpuFp32Policy(sim);
        const harness::RunStats cpu_stats = harness::evaluatePolicy(
            *cpu_policy, sim, harness::allZooNetworks(), scenarios,
            options);

        const std::string label =
            target == 0.0 ? "none" : Table::num(target, 0) + "%";
        table.addRow({
            label,
            Table::times(as_stats.ppw() / cpu_stats.ppw(), 2),
            Table::pct(as_stats.qosViolationRatio()),
            Table::times(as_stats.optPpw() / cpu_stats.ppw(), 2),
            Table::pct(as_stats.accuracyViolationRatio()),
        });
    }
    table.print(std::cout);

    std::cout << "\nPaper anchor: \"when AutoScale uses lower accuracy"
                 " targets, its energy\nefficiency and QoS violation"
                 " ratio are improved. The improvement does not\nvary"
                 " much beyond the 50% accuracy threshold.\"\n";
    obs_out.finalize(&std::cout);
    return 0;
}
