/**
 * @file
 * Fig. 5: impact of on-device interference on MobileNet v3 inference
 * (Mi8Pro). PPW is normalized to Edge (CPU) with no co-running app and
 * latency to the QoS target.
 *
 * Paper shape to reproduce: a CPU-intensive co-runner degrades the CPU
 * hardest and shifts the optimum from the CPU to a co-processor; a
 * memory-intensive co-runner degrades every on-device processor and
 * pushes the optimum off-device (to the cloud).
 */

#include <iostream>

#include "baselines/oracle.h"
#include "common.h"
#include "dnn/model_zoo.h"

using namespace autoscale;

int
main()
{
    bench::printHeader(
        "Fig. 5: on-device interference shifts the optimal target",
        "Shape: CPU hog -> CPU-to-co-processor shift; memory hog -> "
        "edge-to-cloud shift");

    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    baselines::OptOracle oracle(sim);
    const dnn::Network &net = dnn::findModel("MobileNet v3");
    const sim::InferenceRequest request = sim::makeRequest(net);

    struct EnvSpec {
        const char *label;
        env::EnvState env;
    };
    env::EnvState cpu_hog;
    cpu_hog.coCpuUtil = 0.85;
    cpu_hog.coMemUtil = 0.10;
    cpu_hog.thermalFactor = 0.85;
    env::EnvState mem_hog;
    mem_hog.coCpuUtil = 0.20;
    mem_hog.coMemUtil = 0.80;
    mem_hog.thermalFactor = 0.96;
    const EnvSpec envs[] = {
        {"No co-running app", env::EnvState{}},
        {"CPU-intensive app", cpu_hog},
        {"Memory-intensive app", mem_hog},
    };

    const sim::Outcome cpu_clean =
        sim.expected(net, bench::edgeCpuFp32(sim), env::EnvState{});

    struct TargetSpec {
        const char *label;
        sim::TargetPlace place;
        platform::ProcKind proc;
        dnn::Precision precision;
    };
    const TargetSpec targets[] = {
        {"CPU INT8", sim::TargetPlace::Local,
         platform::ProcKind::MobileCpu, dnn::Precision::INT8},
        {"GPU FP16", sim::TargetPlace::Local,
         platform::ProcKind::MobileGpu, dnn::Precision::FP16},
        {"DSP INT8", sim::TargetPlace::Local,
         platform::ProcKind::MobileDsp, dnn::Precision::INT8},
        {"Cloud", sim::TargetPlace::Cloud, platform::ProcKind::ServerGpu,
         dnn::Precision::FP32},
    };

    for (const EnvSpec &spec : envs) {
        printBanner(std::cout, spec.label);
        Table table({"Target", "PPW vs clean Edge(CPU)", "Latency/QoS"});
        for (const TargetSpec &target_spec : targets) {
            const sim::ExecutionTarget target = bench::topTarget(
                sim, target_spec.place, target_spec.proc,
                target_spec.precision);
            const sim::Outcome o = sim.expected(net, target, spec.env);
            table.addRow({
                target_spec.label,
                Table::times(cpu_clean.energyJ / o.energyJ, 2),
                Table::num(o.latencyMs / request.qosMs, 2),
            });
        }
        table.print(std::cout);
        const sim::ExecutionTarget opt =
            oracle.optimalTarget(request, spec.env);
        std::cout << "Opt picks: " << opt.label() << '\n';
    }

    std::cout << "\nPaper anchors: under the CPU-intensive app \"the"
                 " optimal execution target\nshifts from the CPU\" to a"
                 " co-processor; under the memory-intensive app\n\"the"
                 " optimal target therefore moves from the edge to the"
                 " cloud\".\n";
    return 0;
}
