/**
 * @file
 * Ablation of this reproduction's own learning-machinery choices (the
 * design decisions DESIGN.md section 7 documents):
 *
 *  - visit-decayed learning rate vs the paper's fixed 0.9 (within-bin
 *    reward variance makes the fixed rate flip near-optimal rankings);
 *  - Q-table initialization range (optimistic-near-zero vs wide);
 *  - exploration probability epsilon around the paper's 0.1.
 *
 * Each variant trains on all workloads across a variance-heavy scenario
 * mix and reports converged quality against Opt.
 */

#include <iostream>

#include "baselines/fixed.h"
#include "common.h"
#include "dnn/model_zoo.h"

using namespace autoscale;

namespace {

harness::RunStats
evaluateVariant(const sim::InferenceSimulator &sim,
                const core::SchedulerConfig &config,
                const std::vector<env::ScenarioId> &scenarios)
{
    auto policy = harness::makeAutoScalePolicy(sim, 1801, config);
    Rng rng(1802);
    harness::trainPolicy(*policy, sim, harness::allZooNetworks(),
                         scenarios, bench::kTrainRunsPerCombo, rng);
    policy->setExploration(false);
    harness::EvalOptions options;
    options.runsPerCombo = bench::kEvalRunsPerCombo;
    options.seed = 1803;
    return harness::evaluatePolicy(*policy, sim,
                                   harness::allZooNetworks(), scenarios,
                                   options);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Ablation: learning-machinery design choices",
        "Visit-decayed learning rate, Q-init range, and epsilon, "
        "evaluated against Opt under mixed variance");

    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    // Include the in-bin-variance scenario (D3) that motivated the
    // visit decay, plus interference and weak-signal states.
    const std::vector<env::ScenarioId> scenarios{
        env::ScenarioId::S1, env::ScenarioId::S2, env::ScenarioId::S3,
        env::ScenarioId::S4, env::ScenarioId::D3};

    Table table({"Variant", "PPW/Opt", "QoS violations",
                 "Prediction accuracy"});
    auto add = [&](const char *label,
                   const core::SchedulerConfig &config) {
        const harness::RunStats stats =
            evaluateVariant(sim, config, scenarios);
        table.addRow({label,
                      Table::pct(stats.ppw() / stats.optPpw()),
                      Table::pct(stats.qosViolationRatio()),
                      Table::pct(stats.predictionAccuracy())});
    };

    core::SchedulerConfig defaults;
    add("default (decay 0.15, init [-15,0), eps 0.1)", defaults);

    core::SchedulerConfig fixed_lr;
    fixed_lr.rl.visitDecay = 0.0;
    add("paper-literal fixed lr 0.9 (no decay)", fixed_lr);

    core::SchedulerConfig strong_decay;
    strong_decay.rl.visitDecay = 0.5;
    add("aggressive decay 0.5", strong_decay);

    core::SchedulerConfig wide_init;
    wide_init.rl.initLow = -100.0;
    wide_init.rl.initHigh = 0.0;
    add("wide init [-100,0)", wide_init);

    core::SchedulerConfig positive_init;
    positive_init.rl.initLow = 0.0;
    positive_init.rl.initHigh = 1.0;
    add("optimistic init [0,1)", positive_init);

    core::SchedulerConfig low_eps;
    low_eps.rl.epsilon = 0.02;
    add("epsilon 0.02", low_eps);

    core::SchedulerConfig high_eps;
    high_eps.rl.epsilon = 0.3;
    add("epsilon 0.3", high_eps);

    table.print(std::cout);

    std::cout << "\nReading: PPW/Opt is the converged energy efficiency"
                 " relative to the\nexhaustive oracle on the same request"
                 " sequences. With interleaved training\nthe fixed-0.9"
                 " learning rate's within-bin recency fragility shows up"
                 " as a\nmodest but consistent deficit (it was"
                 " catastrophic under block-sequential\ntraining, which"
                 " motivated the decay); the wide init range hurts"
                 " QoS and\naccuracy because poor actions start above"
                 " good learned values.\n";
    return 0;
}
