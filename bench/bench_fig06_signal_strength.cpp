/**
 * @file
 * Fig. 6: impact of wireless signal strength on ResNet 50 inference
 * (Mi8Pro). PPW is normalized to the best edge processor and latency to
 * the QoS target, across an RSSI sweep of the WLAN and the Wi-Fi Direct
 * links.
 *
 * Paper shape to reproduce: weakening signal makes connected execution
 * exponentially less efficient; if only the Wi-Fi (cloud) signal is
 * weak, the connected edge still serves; if Wi-Fi Direct weakens too,
 * the optimum retreats to the edge.
 */

#include <iostream>

#include "baselines/oracle.h"
#include "common.h"
#include "dnn/model_zoo.h"

using namespace autoscale;

int
main()
{
    bench::printHeader(
        "Fig. 6: signal strength shifts the optimal target",
        "Shape: weak Wi-Fi -> connected edge; weak Wi-Fi Direct too -> "
        "back to the edge");

    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    baselines::OptOracle oracle(sim);
    const dnn::Network &net = dnn::findModel("ResNet 50");
    const sim::InferenceRequest request = sim::makeRequest(net);

    // Best local processor as the normalization base (the paper
    // normalizes to "Edge (Best Processor)").
    const sim::ExecutionTarget best_edge = bench::topTarget(
        sim, sim::TargetPlace::Local, platform::ProcKind::MobileDsp,
        dnn::Precision::INT8);
    const sim::Outcome edge_outcome =
        sim.expected(net, best_edge, env::EnvState{});

    // Continuous sweep of the WLAN RSSI (P2P regular).
    printBanner(std::cout, "WLAN RSSI sweep (Wi-Fi Direct at -55 dBm)");
    Table sweep({"WLAN RSSI", "Cloud PPW vs Edge(Best)",
                 "Cloud latency/QoS", "Connected PPW", "Opt picks"});
    const sim::ExecutionTarget cloud = bench::topTarget(
        sim, sim::TargetPlace::Cloud, platform::ProcKind::ServerGpu,
        dnn::Precision::FP32);
    const sim::ExecutionTarget connected = bench::topTarget(
        sim, sim::TargetPlace::ConnectedEdge,
        platform::ProcKind::MobileDsp, dnn::Precision::INT8);
    for (double rssi = -55.0; rssi >= -90.0; rssi -= 5.0) {
        env::EnvState env;
        env.rssiWlanDbm = rssi;
        const sim::Outcome cloud_o = sim.expected(net, cloud, env);
        const sim::Outcome conn_o = sim.expected(net, connected, env);
        const sim::ExecutionTarget opt =
            oracle.optimalTarget(request, env);
        sweep.addRow({
            Table::num(rssi, 0) + " dBm",
            Table::times(edge_outcome.energyJ / cloud_o.energyJ, 2),
            Table::num(cloud_o.latencyMs / request.qosMs, 2),
            Table::times(edge_outcome.energyJ / conn_o.energyJ, 2),
            opt.category(),
        });
    }
    sweep.print(std::cout);

    // The four corner cases of the figure.
    printBanner(std::cout, "Signal corner cases");
    struct Corner {
        const char *label;
        double wlan;
        double p2p;
    };
    const Corner corners[] = {
        {"Both regular", -55.0, -55.0},
        {"Weak Wi-Fi only", -85.0, -55.0},
        {"Weak Wi-Fi Direct only", -55.0, -85.0},
        {"Both weak", -85.0, -85.0},
    };
    Table table({"Signal state", "Opt picks", "Opt energy (mJ)"});
    for (const Corner &corner : corners) {
        env::EnvState env;
        env.rssiWlanDbm = corner.wlan;
        env.rssiP2pDbm = corner.p2p;
        const sim::ExecutionTarget opt =
            oracle.optimalTarget(request, env);
        const sim::Outcome o = sim.expected(net, opt, env);
        table.addRow({corner.label, opt.label(),
                      Table::num(o.energyJ * 1e3, 1)});
    }
    table.print(std::cout);

    std::cout << "\nPaper anchors: \"If only the Wi-Fi signal strength"
                 " weakens, the locally\nconnected edge device can still"
                 " serve as an optimal execution target.\nHowever, if"
                 " the Wi-Fi Direct signal strength also weakens, the"
                 " optimal\ntarget shifts to the edge.\"\n";
    return 0;
}
