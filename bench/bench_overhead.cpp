/**
 * @file
 * Section VI-C runtime-overhead analysis, via google-benchmark: the
 * microsecond-scale costs of the Q-learning machinery — state
 * observation/encoding, greedy Q-table lookup (exploitation), the full
 * training step (reward calculation + table update), and learning
 * transfer — plus the Q-table memory footprint.
 *
 * Paper anchors: 25.4 us per training step, 7.3 us when exploiting the
 * trained table, and a 0.4 MB memory requirement.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "common.h"
#include "core/scheduler.h"
#include "core/transfer.h"
#include "dnn/model_zoo.h"

using namespace autoscale;

namespace {

const sim::InferenceSimulator &
mi8()
{
    static const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    return sim;
}

void
BM_StateEncoding(benchmark::State &state)
{
    const dnn::Network &net = dnn::findModel("MobileNet v3");
    env::EnvState env;
    env.coCpuUtil = 0.4;
    const core::StateEncoder encoder;
    for (auto _ : state) {
        const core::StateFeatures features =
            core::makeStateFeatures(net, env);
        benchmark::DoNotOptimize(encoder.encode(features));
    }
}
BENCHMARK(BM_StateEncoding);

void
BM_QTableGreedyLookup(benchmark::State &state)
{
    // Exploitation cost: argmax over the ~66 actions for one state.
    // Paper: 7.3 us end-to-end when using the trained table.
    core::QTable table(3072, 66);
    Rng rng(1);
    table.randomize(rng, -15.0, 0.0);
    int s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.bestAction(s));
        s = (s + 1) % 3072;
    }
}
BENCHMARK(BM_QTableGreedyLookup);

void
BM_PackedQTableGreedyLookup(benchmark::State &state)
{
    // Deployment-mode lookup over the half-precision packed table.
    core::QTable table(3072, 66);
    Rng rng(8);
    table.randomize(rng, -15.0, 0.0);
    const core::PackedQTable packed(table);
    int s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(packed.bestAction(s));
        s = (s + 1) % 3072;
    }
}
BENCHMARK(BM_PackedQTableGreedyLookup);

void
BM_QTableUpdate(benchmark::State &state)
{
    core::QLearningAgent agent(3072, 66, core::QLearningConfig{}, Rng(2));
    int s = 0;
    for (auto _ : state) {
        agent.update(s, s % 66, -12.5, (s + 1) % 3072);
        s = (s + 1) % 3072;
    }
}
BENCHMARK(BM_QTableUpdate);

void
BM_SchedulerExploit(benchmark::State &state)
{
    // choose() + feedback() with exploration off: the per-inference
    // runtime cost of a deployed AutoScale.
    core::AutoScaleScheduler scheduler(mi8(), core::SchedulerConfig{}, 3);
    scheduler.setExploration(false);
    const dnn::Network &net = dnn::findModel("Inception v1");
    const sim::InferenceRequest request = sim::makeRequest(net);
    const env::EnvState env;
    sim::Outcome outcome;
    outcome.feasible = true;
    outcome.latencyMs = 12.0;
    outcome.estimatedEnergyJ = 0.02;
    outcome.energyJ = 0.02;
    outcome.accuracyPct = 69.8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(scheduler.choose(request, env));
        scheduler.feedback(outcome);
    }
    scheduler.finishEpisode();
}
BENCHMARK(BM_SchedulerExploit);

void
BM_SchedulerTrainingStep(benchmark::State &state)
{
    // Full training step including epsilon-greedy selection and the
    // Algorithm 1 update. Paper: 25.4 us.
    core::AutoScaleScheduler scheduler(mi8(), core::SchedulerConfig{}, 4);
    const dnn::Network &net = dnn::findModel("MobileNet v2");
    const sim::InferenceRequest request = sim::makeRequest(net);
    const env::EnvState env;
    sim::Outcome outcome;
    outcome.feasible = true;
    outcome.latencyMs = 8.0;
    outcome.estimatedEnergyJ = 0.011;
    outcome.energyJ = 0.011;
    outcome.accuracyPct = 71.8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(scheduler.choose(request, env));
        scheduler.feedback(outcome);
    }
    scheduler.finishEpisode();
}
BENCHMARK(BM_SchedulerTrainingStep);

void
BM_RewardCalculation(benchmark::State &state)
{
    const dnn::Network &net = dnn::findModel("ResNet 50");
    const sim::InferenceRequest request = sim::makeRequest(net);
    sim::Outcome outcome;
    outcome.feasible = true;
    outcome.latencyMs = 30.0;
    outcome.estimatedEnergyJ = 0.05;
    outcome.accuracyPct = 76.1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::computeReward(outcome, request));
    }
}
BENCHMARK(BM_RewardCalculation);

/**
 * Fill a DecisionEvent the way the experiment loop does; shared by the
 * observability-overhead benchmarks below.
 */
obs::DecisionEvent
makeObsEvent(const core::AutoScaleScheduler &scheduler,
             const dnn::Network &net, const sim::InferenceRequest &request,
             const sim::Outcome &outcome)
{
    obs::DecisionEvent event;
    event.policy = "AutoScale";
    event.network = net.name();
    event.scenario = "S1";
    event.phase = "eval";
    event.target = "Local CPU INT8 @2.80GHz";
    event.category = "on-device";
    event.feasible = outcome.feasible;
    event.latencyMs = outcome.latencyMs;
    event.energyJ = outcome.energyJ;
    event.accuracyPct = outcome.accuracyPct;
    event.qosMs = request.qosMs;
    const core::AutoScaleScheduler::DecisionInfo &info =
        scheduler.lastDecision();
    event.stateId = info.state;
    event.actionId = info.action;
    event.qValue = info.qValue;
    event.reward = scheduler.lastReward();
    event.qUpdateDelta = scheduler.lastQUpdateDelta();
    return event;
}

void
BM_SchedulerExploitObsDisabled(benchmark::State &state)
{
    // The BM_SchedulerExploit loop plus the disabled-observability
    // guard exactly as the experiment loop runs it: one enabled()
    // branch per inference. The acceptance bar is that this stays
    // within 2% of BM_SchedulerExploit.
    core::AutoScaleScheduler scheduler(mi8(), core::SchedulerConfig{}, 3);
    scheduler.setExploration(false);
    const dnn::Network &net = dnn::findModel("Inception v1");
    const sim::InferenceRequest request = sim::makeRequest(net);
    const env::EnvState env;
    sim::Outcome outcome;
    outcome.feasible = true;
    outcome.latencyMs = 12.0;
    outcome.estimatedEnergyJ = 0.02;
    outcome.energyJ = 0.02;
    outcome.accuracyPct = 69.8;
    const obs::ObsContext obs; // both sinks null: tracing off
    for (auto _ : state) {
        benchmark::DoNotOptimize(scheduler.choose(request, env));
        scheduler.feedback(outcome);
        if (obs.enabled()) {
            obs::DecisionEvent event =
                makeObsEvent(scheduler, net, request, outcome);
            obs.trace->record(std::move(event));
        }
    }
    scheduler.finishEpisode();
}
BENCHMARK(BM_SchedulerExploitObsDisabled);

void
BM_SchedulerExploitTraced(benchmark::State &state)
{
    // Same loop with a live recorder and registry: the enabled-path
    // cost of building and buffering one event per inference.
    core::AutoScaleScheduler scheduler(mi8(), core::SchedulerConfig{}, 3);
    scheduler.setExploration(false);
    const dnn::Network &net = dnn::findModel("Inception v1");
    const sim::InferenceRequest request = sim::makeRequest(net);
    const env::EnvState env;
    sim::Outcome outcome;
    outcome.feasible = true;
    outcome.latencyMs = 12.0;
    outcome.estimatedEnergyJ = 0.02;
    outcome.energyJ = 0.02;
    outcome.accuracyPct = 69.8;
    obs::TraceRecorder trace;
    obs::MetricsRegistry metrics;
    const obs::ObsContext obs{&trace, &metrics};
    for (auto _ : state) {
        benchmark::DoNotOptimize(scheduler.choose(request, env));
        scheduler.feedback(outcome);
        if (obs.enabled()) {
            obs::DecisionEvent event =
                makeObsEvent(scheduler, net, request, outcome);
            metrics.inc("eval.inferences");
            metrics.observe("eval.latency_ms", event.latencyMs);
            trace.record(std::move(event));
        }
        if (trace.size() >= 1 << 16) { // bound memory across iterations
            trace.clear();
        }
    }
    scheduler.finishEpisode();
}
BENCHMARK(BM_SchedulerExploitTraced);

void
BM_TraceRecordEvent(benchmark::State &state)
{
    // Isolated cost of buffering one fully populated event.
    core::AutoScaleScheduler scheduler(mi8(), core::SchedulerConfig{}, 3);
    const dnn::Network &net = dnn::findModel("Inception v1");
    const sim::InferenceRequest request = sim::makeRequest(net);
    sim::Outcome outcome;
    outcome.feasible = true;
    outcome.latencyMs = 12.0;
    outcome.energyJ = 0.02;
    outcome.accuracyPct = 69.8;
    const obs::DecisionEvent prototype =
        makeObsEvent(scheduler, net, request, outcome);
    obs::TraceRecorder trace;
    for (auto _ : state) {
        obs::DecisionEvent event = prototype;
        trace.record(std::move(event));
        if (trace.size() >= 1 << 16) {
            trace.clear();
        }
    }
}
BENCHMARK(BM_TraceRecordEvent);

void
BM_MetricsCounterAndHistogram(benchmark::State &state)
{
    // Isolated cost of the per-decision registry updates.
    obs::MetricsRegistry metrics;
    metrics.declareHistogram("eval.latency_ms",
                             obs::MetricsRegistry::latencyBucketsMs());
    double latency = 0.5;
    for (auto _ : state) {
        metrics.inc("eval.inferences");
        metrics.observe("eval.latency_ms", latency);
        latency = latency < 2000.0 ? latency * 1.7 : 0.5;
    }
}
BENCHMARK(BM_MetricsCounterAndHistogram);

void
BM_MetricsCounterHandle(benchmark::State &state)
{
    // The serve loop's pre-resolved handle path: counter() once, then
    // add() per event with no map lookup. Contrast with the inc()
    // lookups in BM_MetricsCounterAndHistogram.
    obs::MetricsRegistry metrics;
    metrics.declareHistogram("eval.latency_ms",
                             obs::MetricsRegistry::latencyBucketsMs());
    obs::Counter &inferences = metrics.counter("eval.inferences");
    double latency = 0.5;
    for (auto _ : state) {
        inferences.add();
        metrics.observe("eval.latency_ms", latency);
        latency = latency < 2000.0 ? latency * 1.7 : 0.5;
    }
}
BENCHMARK(BM_MetricsCounterHandle);

void
BM_LearningTransfer(benchmark::State &state)
{
    // One-time cost of re-keying a trained table onto another device.
    const sim::InferenceSimulator moto =
        sim::InferenceSimulator::makeDefault(platform::makeMotoXForce());
    core::AutoScaleScheduler source(mi8(), core::SchedulerConfig{}, 5);
    for (auto _ : state) {
        core::AutoScaleScheduler destination(moto,
                                             core::SchedulerConfig{}, 6);
        destination.transferFrom(source);
        benchmark::DoNotOptimize(destination.agent().table().at(0, 0));
    }
}
BENCHMARK(BM_LearningTransfer);

} // namespace

int
main(int argc, char **argv)
{
    bench::printHeader(
        "Section VI-C: runtime overhead",
        "Paper anchors: 25.4 us training step, 7.3 us exploitation, "
        "0.4 MB Q-table");

    const core::AutoScaleScheduler scheduler(mi8(),
                                             core::SchedulerConfig{}, 7);
    const std::size_t bytes =
        scheduler.agent().table().memoryBytes();
    const core::PackedQTable packed(scheduler.agent().table());
    std::cout << "Q-table memory footprint: "
              << Table::num(static_cast<double>(bytes)
                                / (1024.0 * 1024.0),
                            2)
              << " MB as float32; "
              << bench::withPaper(
                     Table::num(static_cast<double>(packed.memoryBytes())
                                    / (1024.0 * 1024.0),
                                2)
                         + " MB",
                     "0.4 MB")
              << " packed to half precision ("
              << scheduler.agent().table().numStates() << " x "
              << scheduler.agent().table().numActions() << "); "
              << Table::pct(static_cast<double>(packed.memoryBytes())
                            / (3.0 * 1024.0 * 1024.0 * 1024.0), 2)
              << " of a 3 GB mid-end device's DRAM (paper: 0.01%)\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
