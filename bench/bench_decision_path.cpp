/**
 * @file
 * Decision-path throughput benchmark for the precomputed cost tables
 * (DESIGN.md §13): single-threaded steps/sec for
 *
 *  (a) the oracle sweep — OptOracle::optimalTarget over every zoo
 *      network on a seeded dynamic environment stream (the inner loop
 *      of every `matched Opt` column and regret gate);
 *  (b) the policy train step — AutoScaleScheduler choose + noisy
 *      simulator execution + feedback (the per-inference training
 *      cost); and
 *  (c) the partition sweep — expectedPartitioned over every split
 *      point with the interference-blinded environment, exactly the
 *      NeuroSurgeon/MOSAIC inner search.
 *
 * Both the cached path and the `--direct` first-principles path run in
 * one invocation by default (restrict with --cached / --direct);
 * per-mode checksums over the produced outcomes are compared to assert
 * the two paths computed the same numbers, and the speedups land in
 * BENCH_decision_path.json. `--check` turns the ≥3x oracle-sweep and
 * ≥5x partition-sweep speedup floors into a nonzero exit (the CI
 * perf-regression gate).
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/oracle.h"
#include "common.h"
#include "core/scheduler.h"
#include "dnn/model_zoo.h"
#include "env/scenario.h"
#include "obs/json.h"
#include "sim/qos.h"

using namespace autoscale;

namespace {

/** One workload's measurement in one mode. */
struct Measurement {
    std::int64_t steps = 0;
    double seconds = 0.0;
    double checksum = 0.0;

    double
    stepsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(steps) / seconds : 0.0;
    }
};

/** All three workloads for one cache mode. */
struct ModeResult {
    Measurement oracle;
    Measurement train;
    Measurement partition;
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Pre-sampled environment stream shared by both modes. */
std::vector<env::EnvState>
sampleEnvs(int steps, std::uint64_t seed)
{
    env::Scenario scenario(env::ScenarioId::D4);
    Rng rng(seed);
    std::vector<env::EnvState> envs;
    envs.reserve(static_cast<std::size_t>(steps));
    for (int i = 0; i < steps; ++i) {
        envs.push_back(scenario.next(rng));
    }
    return envs;
}

/**
 * (a) Oracle sweep: every zoo network × every env step. One step = one
 * optimalTarget call (a full feasible-action-space argmin).
 */
Measurement
benchOracleSweep(const sim::InferenceSimulator &sim,
                 const std::vector<env::EnvState> &envs, int repeats)
{
    const baselines::OptOracle oracle(sim);
    std::vector<sim::InferenceRequest> requests;
    for (const dnn::Network &net : dnn::modelZoo()) {
        requests.push_back(sim::makeRequest(net));
    }
    Measurement m;
    const double start = now();
    for (int r = 0; r < repeats; ++r) {
        for (const env::EnvState &env : envs) {
            for (const sim::InferenceRequest &request : requests) {
                const sim::ExecutionTarget target =
                    oracle.optimalTarget(request, env);
                m.checksum += static_cast<double>(target.vfIndex)
                    + 7.0 * static_cast<double>(target.proc)
                    + 131.0 * static_cast<double>(target.place);
                ++m.steps;
            }
        }
    }
    m.seconds = now() - start;
    return m;
}

/**
 * (b) Policy train step: epsilon-greedy choose, noisy simulated
 * execution of the chosen action, reward feedback. One step = one full
 * train iteration.
 */
Measurement
benchTrainStep(const sim::InferenceSimulator &sim,
               const std::vector<env::EnvState> &envs, int repeats,
               std::uint64_t seed)
{
    core::AutoScaleScheduler scheduler(sim, core::SchedulerConfig{}, seed);
    std::vector<sim::InferenceRequest> requests;
    for (const dnn::Network &net : dnn::modelZoo()) {
        requests.push_back(sim::makeRequest(net));
    }
    Rng rng(seed + 1);
    Measurement m;
    const double start = now();
    for (int r = 0; r < repeats; ++r) {
        for (const env::EnvState &env : envs) {
            for (const sim::InferenceRequest &request : requests) {
                const sim::ExecutionTarget target =
                    scheduler.choose(request, env);
                const sim::Outcome outcome =
                    sim.run(*request.network, target, env, rng);
                scheduler.feedback(outcome);
                m.checksum += outcome.energyJ;
                ++m.steps;
            }
        }
        scheduler.finishEpisode();
    }
    m.seconds = now() - start;
    return m;
}

/**
 * (c) Partition sweep: the partitioner baselines' inner loop — every
 * split point of Inception v3 (the deepest zoo network, the paper's
 * Fig. 3 partitioning subject) on the local CPU at top frequency
 * against the cloud, interference-blinded environment. One step = one
 * expectedPartitioned call (two layer-range latencies + a boundary
 * transfer).
 */
Measurement
benchPartitionSweep(const sim::InferenceSimulator &sim,
                    const std::vector<env::EnvState> &envs, int repeats)
{
    const dnn::Network &net = dnn::findModel("Inception v3");
    const std::size_t num_layers = net.layers().size();
    const std::size_t vf = sim.localDevice().cpu().maxVfIndex();
    Measurement m;
    const double start = now();
    for (int r = 0; r < repeats; ++r) {
        const env::EnvState &env = envs[static_cast<std::size_t>(r)
                                        % envs.size()];
        env::EnvState blinded = env;
        blinded.coCpuUtil = 0.0;
        blinded.coMemUtil = 0.0;
        blinded.thermalFactor = 1.0;
        sim::PartitionSpec spec;
        spec.localProc = platform::ProcKind::MobileCpu;
        spec.localPrecision = dnn::Precision::FP32;
        spec.vfIndex = vf;
        spec.remotePlace = sim::TargetPlace::Cloud;
        for (std::size_t split = 0; split <= num_layers; ++split) {
            spec.splitLayer = split;
            const sim::Outcome outcome =
                sim.expectedPartitioned(net, spec, blinded);
            m.checksum += outcome.latencyMs;
            ++m.steps;
        }
    }
    m.seconds = now() - start;
    return m;
}

ModeResult
runMode(bool cached, const std::vector<env::EnvState> &envs,
        int oracleRepeats, int trainRepeats, int partitionRepeats,
        std::uint64_t seed)
{
    sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    sim.setUseCostCache(cached);
    ModeResult result;
    result.oracle = benchOracleSweep(sim, envs, oracleRepeats);
    result.train = benchTrainStep(sim, envs, trainRepeats, seed);
    result.partition = benchPartitionSweep(sim, envs, partitionRepeats);
    return result;
}

void
printMeasurement(const char *mode, const char *workload,
                 const Measurement &m)
{
    std::cout << mode << " " << workload << ": "
              << Table::num(m.stepsPerSec(), 0) << " steps/s ("
              << m.steps << " steps in " << Table::num(m.seconds, 3)
              << " s, checksum " << Table::num(m.checksum, 3) << ")\n";
}

std::string
measurementJson(const Measurement &m)
{
    return std::string("{\"steps\":") + std::to_string(m.steps)
        + ",\"seconds\":" + obs::jsonNumber(m.seconds)
        + ",\"steps_per_sec\":" + obs::jsonNumber(m.stepsPerSec())
        + ",\"checksum\":" + obs::jsonNumber(m.checksum) + "}";
}

std::string
modeJson(const ModeResult &r)
{
    return std::string("{\"oracle_sweep\":") + measurementJson(r.oracle)
        + ",\"train_step\":" + measurementJson(r.train)
        + ",\"partition_sweep\":" + measurementJson(r.partition) + "}";
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.getInt("--seed", 1));
    const int envSteps = args.getInt("--env-steps", 40);
    const int oracleRepeats = args.getInt("--oracle-repeats", 8);
    const int trainRepeats = args.getInt("--train-repeats", 8);
    const int partitionRepeats = args.getInt("--partition-repeats", 120);
    const std::string out =
        args.get("--out", "BENCH_decision_path.json");
    const bool check = args.has("--check");
    const bool onlyCached = args.has("--cached");
    const bool onlyDirect = args.has("--direct");
    const bool runCached = !onlyDirect;
    const bool runDirect = !onlyCached;

    bench::printHeader(
        "Decision-path throughput: precomputed tables vs direct",
        "Gate: cached >= 3x direct on the oracle sweep, >= 5x on the "
        "partition sweep");

    const std::vector<env::EnvState> envs = sampleEnvs(envSteps, seed);

    ModeResult cached;
    ModeResult direct;
    if (runCached) {
        // Warm-up pass (page in code/tables), then the measured pass.
        runMode(true, envs, 1, 1, 2, seed);
        cached = runMode(true, envs, oracleRepeats, trainRepeats,
                         partitionRepeats, seed);
        printMeasurement("cached", "oracle-sweep", cached.oracle);
        printMeasurement("cached", "train-step", cached.train);
        printMeasurement("cached", "partition-sweep", cached.partition);
    }
    if (runDirect) {
        runMode(false, envs, 1, 1, 2, seed);
        direct = runMode(false, envs, oracleRepeats, trainRepeats,
                         partitionRepeats, seed);
        printMeasurement("direct", "oracle-sweep", direct.oracle);
        printMeasurement("direct", "train-step", direct.train);
        printMeasurement("direct", "partition-sweep", direct.partition);
    }

    bool checksumsAgree = true;
    double oracleSpeedup = 0.0;
    double trainSpeedup = 0.0;
    double partitionSpeedup = 0.0;
    if (runCached && runDirect) {
        // The cached path replays the direct path's exact FP sequence,
        // and both modes reseed identically, so the checksums must be
        // bit-equal — a free end-to-end parity assertion.
        checksumsAgree = cached.oracle.checksum == direct.oracle.checksum
            && cached.train.checksum == direct.train.checksum
            && cached.partition.checksum == direct.partition.checksum;
        oracleSpeedup =
            cached.oracle.stepsPerSec() / direct.oracle.stepsPerSec();
        trainSpeedup =
            cached.train.stepsPerSec() / direct.train.stepsPerSec();
        partitionSpeedup = cached.partition.stepsPerSec()
            / direct.partition.stepsPerSec();
        std::cout << "\nspeedup: oracle-sweep "
                  << Table::num(oracleSpeedup, 2) << "x, train-step "
                  << Table::num(trainSpeedup, 2) << "x, partition-sweep "
                  << Table::num(partitionSpeedup, 2) << "x; checksums "
                  << (checksumsAgree ? "agree" : "DISAGREE") << "\n";
    }

    std::ofstream json(out);
    json << "{\"seed\":" << seed;
    if (runCached) {
        json << ",\"cached\":" << modeJson(cached);
    }
    if (runDirect) {
        json << ",\"direct\":" << modeJson(direct);
    }
    if (runCached && runDirect) {
        json << ",\"speedup\":{\"oracle_sweep\":"
             << obs::jsonNumber(oracleSpeedup)
             << ",\"train_step\":" << obs::jsonNumber(trainSpeedup)
             << ",\"partition_sweep\":"
             << obs::jsonNumber(partitionSpeedup) << "}"
             << ",\"checksums_agree\":"
             << (checksumsAgree ? "true" : "false")
             << ",\"gates\":{\"oracle_min_3x\":"
             << (oracleSpeedup >= 3.0 ? "true" : "false")
             << ",\"partition_min_5x\":"
             << (partitionSpeedup >= 5.0 ? "true" : "false") << "}";
    }
    json << "}\n";
    std::cout << "Wrote " << out << "\n";

    if (check) {
        if (!(runCached && runDirect)) {
            std::cerr << "--check requires both modes\n";
            return 2;
        }
        if (!checksumsAgree) {
            std::cerr << "FAIL: cached/direct checksums disagree\n";
            return 1;
        }
        if (oracleSpeedup < 3.0) {
            std::cerr << "FAIL: oracle-sweep speedup "
                      << Table::num(oracleSpeedup, 2) << "x < 3x\n";
            return 1;
        }
        if (partitionSpeedup < 5.0) {
            std::cerr << "FAIL: partition-sweep speedup "
                      << Table::num(partitionSpeedup, 2) << "x < 5x\n";
            return 1;
        }
        std::cout << "CHECK PASSED\n";
    }
    return 0;
}
