/**
 * @file
 * Fig. 10: the streaming scenario — inference intensity rises from
 * single-shot to 30 FPS video, tightening the QoS to 33.3 ms and
 * heating the SoC between frames.
 *
 * Paper shape to reproduce: energy efficiency and QoS-violation ratio
 * degrade versus the non-streaming scenario, but AutoScale still tracks
 * Opt and substantially beats the baselines.
 */

#include <iostream>
#include <map>

#include "baselines/fixed.h"
#include "baselines/oracle.h"
#include "common.h"
#include "dnn/model_zoo.h"

using namespace autoscale;

namespace {

void
runScenario(const sim::InferenceSimulator &sim, bool streaming, int jobs,
            const obs::ObsContext &obs)
{
    const std::vector<env::ScenarioId> scenarios = env::staticScenarios();
    harness::EvalOptions options;
    options.runsPerCombo = bench::kEvalRunsPerCombo;
    options.streaming = streaming;
    options.seed = streaming ? 1010 : 1011;
    options.jobs = jobs;
    options.obs = obs;

    const harness::RunStats as_stats = harness::evaluateAutoScaleLoo(
        sim, harness::allZooNetworks(), scenarios,
        bench::kTrainRunsPerCombo, options);

    std::vector<std::unique_ptr<baselines::SchedulingPolicy>> others;
    others.push_back(baselines::makeEdgeCpuFp32Policy(sim));
    others.push_back(baselines::makeEdgeBestPolicy(sim));
    others.push_back(baselines::makeCloudPolicy(sim));
    others.push_back(baselines::makeOptOracle(sim));

    std::map<std::string, harness::RunStats> stats;
    for (const auto &policy : others) {
        stats.emplace(policy->name(),
                      harness::evaluatePolicy(*policy, sim,
                                              harness::allZooNetworks(),
                                              scenarios, options));
    }
    const double cpu_ppw = stats.at("Edge (CPU FP32)").ppw();

    Table table({"Policy", "PPW vs Edge(CPU FP32)", "QoS violations"});
    auto add_row = [&](const std::string &name,
                       const harness::RunStats &s) {
        table.addRow({name, Table::times(s.ppw() / cpu_ppw, 2),
                      Table::pct(s.qosViolationRatio())});
    };
    add_row("Edge (CPU FP32)", stats.at("Edge (CPU FP32)"));
    add_row("Edge (Best)", stats.at("Edge (Best)"));
    add_row("Cloud", stats.at("Cloud"));
    add_row("AutoScale", as_stats);
    add_row("Opt", stats.at("Opt"));
    table.print(std::cout);
    std::cout << "AutoScale PPW relative to Opt: "
              << Table::pct(as_stats.ppw() / stats.at("Opt").ppw())
              << "; QoS-violation gap: "
              << Table::pct(as_stats.qosViolationRatio()
                            - stats.at("Opt").qosViolationRatio())
              << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printHeader(
        "Fig. 10: rising inference intensity (non-streaming -> "
        "streaming)",
        "Shape: efficiency and QoS degrade under 30 FPS, but AutoScale "
        "still tracks Opt");

    const Args args(argc, argv);
    const bench::RunConfig rc = bench::runConfigFromArgs(args);
    obs::ObsOutput obs_out(rc.obs);

    for (const std::string &phone : platform::phoneNames()) {
        sim::InferenceSimulator sim =
            sim::InferenceSimulator::makeDefault(
                platform::makePhone(phone));
        if (obs_out.config().metering()) {
            sim.setObserver(&obs_out.metrics());
        }
        printBanner(std::cout,
                    phone + ": non-streaming (50 ms interactive QoS)");
        runScenario(sim, /*streaming=*/false, rc.jobs,
                    obs_out.context());
        printBanner(std::cout,
                    phone + ": streaming (30 FPS QoS, vision only)");
        runScenario(sim, /*streaming=*/true, rc.jobs, obs_out.context());
    }
    obs_out.finalize(&std::cout);
    return 0;
}
