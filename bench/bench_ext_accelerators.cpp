/**
 * @file
 * Extension study (Section V-C: "additional actions, such as mobile NPU
 * or cloud TPU, could be further considered"): attach an NPU to the
 * Mi8Pro and a TPU to the cloud server, and measure how the enlarged
 * action space changes the optimal targets and AutoScale's results.
 */

#include <iostream>

#include "baselines/fixed.h"
#include "baselines/oracle.h"
#include "common.h"
#include "core/action_space.h"
#include "dnn/model_zoo.h"
#include "net/link.h"

using namespace autoscale;

int
main()
{
    bench::printHeader(
        "Extension: mobile NPU + cloud TPU actions",
        "The augmented action space shifts conv-heavy optima onto the "
        "NPU and heavy remote work onto the TPU");

    const sim::InferenceSimulator base =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    const sim::InferenceSimulator extended(
        platform::makeMi8ProWithNpu(), platform::makeGalaxyTabS6(),
        platform::makeCloudServerWithTpu(), net::WirelessLink::defaultWlan(),
        net::WirelessLink::defaultP2p());

    std::cout << "Action space: " << core::buildActionSpace(base).size()
              << " (base) -> " << core::buildActionSpace(extended).size()
              << " (with NPU + TPU)\n";

    // Per-network optimal target and energy, before and after.
    printBanner(std::cout, "Opt per workload (clean environment)");
    baselines::OptOracle base_oracle(base);
    baselines::OptOracle ext_oracle(extended);
    const env::EnvState clean;
    Table table({"Network", "Opt (base)", "mJ", "Opt (extended)", "mJ",
                 "Gain"});
    for (const auto &net : dnn::modelZoo()) {
        const sim::InferenceRequest request = sim::makeRequest(net);
        const sim::ExecutionTarget before =
            base_oracle.optimalTarget(request, clean);
        const sim::ExecutionTarget after =
            ext_oracle.optimalTarget(request, clean);
        const double e_before =
            base.expected(net, before, clean).energyJ;
        const double e_after =
            extended.expected(net, after, clean).energyJ;
        table.addRow({net.name(), before.category(),
                      Table::num(e_before * 1e3, 1), after.category(),
                      Table::num(e_after * 1e3, 1),
                      Table::times(e_before / e_after, 2)});
    }
    table.print(std::cout);

    // AutoScale learns the new actions without any code change.
    printBanner(std::cout,
                "AutoScale on the extended system (static envs)");
    const std::vector<env::ScenarioId> scenarios = env::staticScenarios();
    harness::EvalOptions options;
    options.runsPerCombo = bench::kEvalRunsPerCombo;
    options.seed = 1601;

    auto report = [&](const sim::InferenceSimulator &sim,
                      const char *label) {
        auto policy = bench::trainOnAll(sim, scenarios, 1602);
        const harness::RunStats stats = harness::evaluatePolicy(
            *policy, sim, harness::allZooNetworks(), scenarios, options);
        auto cpu = baselines::makeEdgeCpuFp32Policy(sim);
        const harness::RunStats cpu_stats = harness::evaluatePolicy(
            *cpu, sim, harness::allZooNetworks(), scenarios, options);
        std::cout << label << ": AutoScale PPW "
                  << Table::times(stats.ppw() / cpu_stats.ppw(), 1)
                  << " vs Edge(CPU), QoS violations "
                  << Table::pct(stats.qosViolationRatio())
                  << ", NPU share "
                  << Table::pct(stats.decisionShare("Edge (NPU)"))
                  << '\n';
        return stats.ppw();
    };
    const double base_ppw = report(base, "Base (66 actions)");
    const double ext_ppw = report(extended, "Extended (68 actions)");
    std::cout << "Extended/base AutoScale energy-efficiency ratio: "
              << Table::times(ext_ppw / base_ppw, 2) << '\n';
    return 0;
}
