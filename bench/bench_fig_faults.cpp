/**
 * @file
 * Fault extension: AutoScale re-learns to go local when the link dies.
 *
 * A ResNet 50 stream on the Mi8Pro in S1 (no runtime variance, regular
 * signal) prefers the Cloud GPU — until the `blackout` fault preset
 * takes both links down for steps [150, 450). Every remote attempt
 * then burns the full timeout-retry-fallback budget, the wasted energy
 * lands in the reward, and the Q-values for remote targets collapse
 * until a local target tops the table. When the link comes back,
 * epsilon-greedy exploration rediscovers the remote targets and the
 * decision mix recovers.
 *
 * No paper anchor: this extends the paper's stochastic-variance model
 * (Section IV) with hard connectivity faults. The printed series is
 * deterministic for a given --seed/--steps and doubles as a golden
 * regression surface.
 */

#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "dnn/model_zoo.h"
#include "fault/fault_injector.h"
#include "fault/retry.h"
#include "util/logging.h"

using namespace autoscale;

namespace {

/** Per-bucket decision/outcome tallies. */
struct Bucket {
    int steps = 0;
    int localDecisions = 0;
    int fallbacks = 0;
    int timeouts = 0;
    double energyJ = 0.0;
    double wastedJ = 0.0;

    double localShare() const
    {
        return steps > 0
            ? static_cast<double>(localDecisions) / steps : 0.0;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    bench::printHeader(
        "Fault extension: blackout re-learning (ResNet 50, S1)",
        "Shape: decisions shift local while both links are down "
        "(steps 150-449), then recover");

    const Args args(argc, argv);
    const auto seed = static_cast<std::uint64_t>(args.getInt("--seed", 1));
    const int steps = args.getInt("--steps", 600);
    const int bucket_size = args.getInt("--bucket", 50);
    AS_CHECK(steps > 0 && bucket_size > 0);

    const sim::InferenceSimulator sim =
        sim::InferenceSimulator::makeDefault(platform::makeMi8Pro());
    const std::vector<env::ScenarioId> scenarios = {env::ScenarioId::S1};

    // Train fault-free first: the agent must already prefer the remote
    // target for the blackout to have something to break.
    auto policy = bench::trainOnAll(sim, scenarios, seed);
    policy->setExploration(true);
    policy->setLearning(true);

    const dnn::Network &net = dnn::findModel("ResNet 50");
    const sim::InferenceRequest request = sim::makeRequest(net);
    const fault::FaultPlan plan = fault::FaultPlan::fromName("blackout");
    const fault::RetryPolicy retry;
    env::Scenario scenario(env::ScenarioId::S1, plan);
    Rng rng(seed ^ 0xb1acULL);

    const int num_buckets = (steps + bucket_size - 1) / bucket_size;
    std::vector<Bucket> buckets(static_cast<std::size_t>(num_buckets));
    Bucket before, during, after;

    for (int step = 0; step < steps; ++step) {
        env::EnvState env = scenario.next(rng);
        const baselines::Decision decision =
            policy->decide(request, env, rng);
        const sim::FaultOutcome result =
            baselines::executeDecisionWithFaults(sim, request, decision,
                                                 env, retry, rng);
        policy->feedback(result.outcome);

        const bool local = !decision.partitioned
            && decision.target.place == sim::TargetPlace::Local;
        Bucket &bucket = buckets[static_cast<std::size_t>(
            step / bucket_size)];
        Bucket &phase = step < 150 ? before
            : step < 450 ? during : after;
        for (Bucket *b : {&bucket, &phase}) {
            ++b->steps;
            b->localDecisions += local ? 1 : 0;
            b->fallbacks += result.fellBack ? 1 : 0;
            b->timeouts += result.timeouts;
            b->energyJ += result.outcome.energyJ;
            b->wastedJ += result.wastedEnergyJ;
        }
    }

    Table table({"Steps", "Link", "Local decisions", "Fallbacks",
                 "Timeouts", "Mean energy (mJ)", "Wasted (mJ)"});
    for (int i = 0; i < num_buckets; ++i) {
        const Bucket &b = buckets[static_cast<std::size_t>(i)];
        const int lo = i * bucket_size;
        const int hi = lo + b.steps - 1;
        // The blackout preset takes both links down over [150, 450).
        const bool dark = lo < 450 && hi >= 150;
        table.addRow({std::to_string(lo) + "-" + std::to_string(hi),
                      dark ? "DOWN" : "up",
                      Table::pct(b.localShare()),
                      std::to_string(b.fallbacks),
                      std::to_string(b.timeouts),
                      Table::num(b.energyJ / b.steps * 1e3, 1),
                      Table::num(b.wastedJ * 1e3, 1)});
    }
    table.print(std::cout);

    std::cout << "\nPhase summary:\n";
    Table phases({"Phase", "Local decisions", "Fallbacks",
                  "Mean energy (mJ)"});
    auto phase_row = [&](const char *name, const Bucket &b) {
        phases.addRow({name, Table::pct(b.localShare()),
                       std::to_string(b.fallbacks),
                       Table::num(b.energyJ / std::max(1, b.steps) * 1e3,
                                  1)});
    };
    phase_row("Before blackout (0-149)", before);
    phase_row("During blackout (150-449)", during);
    phase_row("After recovery (450+)", after);
    phases.print(std::cout);

    std::cout << "\nLocal share " << Table::pct(before.localShare())
              << " -> " << Table::pct(during.localShare()) << " -> "
              << Table::pct(after.localShare())
              << " (before -> during -> after)\n";
    return 0;
}
